"""ENS: chain, contracts, namehash, scraping."""

import random

import pytest

from repro.content.catalog import ContentCatalog
from repro.ens.chain import Chain
from repro.ens.contracts import (
    Contenthash,
    ENSRegistry,
    EthRegistrar,
    PublicResolver,
    namehash,
)
from repro.ens.scraper import ENSContenthashScraper, _decode_cid
from repro.ens.seeding import ENSSeedConfig, seed_ens_world
from repro.ids.cid import CID


class TestNamehash:
    def test_root_is_zero(self):
        assert namehash("") == "0x" + "00" * 32

    def test_deterministic_and_distinct(self):
        assert namehash("vitalik.eth") == namehash("vitalik.eth")
        assert namehash("vitalik.eth") != namehash("vitalik.test")

    def test_hierarchical(self):
        # namehash(sub.name.eth) depends on namehash(name.eth).
        assert namehash("a.b.eth") != namehash("a.c.eth")

    def test_rejects_empty_labels(self):
        with pytest.raises(ValueError):
            namehash("a..eth")


class TestChain:
    def test_pagination(self):
        chain = Chain()
        for index in range(25):
            chain.emit("0xaddr", "Ev", (str(index),), {})
            chain.mine()
        page1 = chain.get_logs(address="0xaddr", page=1, page_size=10)
        page3 = chain.get_logs(address="0xaddr", page=3, page_size=10)
        assert len(page1) == 10
        assert len(page3) == 5
        assert page1[0].topics == ("0",)

    def test_iter_all_logs(self):
        chain = Chain()
        for _ in range(7):
            chain.emit("0xaddr", "Ev", (), {})
        assert len(list(chain.iter_all_logs("0xaddr", page_size=3))) == 7

    def test_block_filtering(self):
        chain = Chain()
        chain.emit("0xaddr", "Ev", ("old",), {})
        chain.mine(100)
        chain.emit("0xaddr", "Ev", ("new",), {})
        recent = chain.get_logs(address="0xaddr", from_block=chain.current_block)
        assert [log.topics for log in recent] == [("new",)]

    def test_rejects_bad_pages(self):
        with pytest.raises(ValueError):
            Chain().get_logs(page=0)


class TestContracts:
    @pytest.fixture()
    def ens(self):
        chain = Chain()
        registry = ENSRegistry(chain)
        registrar = EthRegistrar(registry, chain)
        resolver = PublicResolver(chain, registry, "0xresolver")
        return chain, registry, registrar, resolver

    def test_registration_assigns_ownership(self, ens):
        _, registry, registrar, _ = ens
        node = registrar.register("alice", "0xalice")
        assert registry.owner(node) == "0xalice"
        assert registrar.is_registered("alice")

    def test_double_registration_rejected(self, ens):
        _, _, registrar, _ = ens
        registrar.register("bob", "0xbob")
        with pytest.raises(ValueError):
            registrar.register("bob", "0xeve")

    def test_only_owner_sets_resolver_and_contenthash(self, ens):
        _, registry, registrar, resolver = ens
        node = registrar.register("carol", "0xcarol")
        with pytest.raises(PermissionError):
            registry.set_resolver(node, resolver.address, caller="0xeve")
        registry.set_resolver(node, resolver.address, caller="0xcarol")
        with pytest.raises(PermissionError):
            resolver.set_contenthash(node, Contenthash("ipfs-ns", "b..."), caller="0xeve")

    def test_contenthash_roundtrip(self, ens):
        _, registry, registrar, resolver = ens
        node = registrar.register("dave", "0xdave")
        registry.set_resolver(node, resolver.address, caller="0xdave")
        value = Contenthash("ipfs-ns", CID.generate(random.Random(0)).to_base32())
        resolver.set_contenthash(node, value, caller="0xdave")
        assert resolver.contenthash(node) == value
        assert Contenthash.decode(value.encode()) == value

    def test_contenthash_emits_event(self, ens):
        chain, registry, registrar, resolver = ens
        node = registrar.register("erin", "0xerin")
        registry.set_resolver(node, resolver.address, caller="0xerin")
        resolver.set_contenthash(node, Contenthash("ipfs-ns", "btest"), caller="0xerin")
        events = chain.get_logs(address=resolver.address, event="ContenthashChanged")
        assert len(events) == 1
        assert events[0].topics == (node,)


class TestScraper:
    def test_decode_cid_roundtrip(self):
        cid = CID.generate(random.Random(1))
        assert _decode_cid(cid.to_base32()) == cid

    def test_decode_cid_rejects_garbage(self):
        assert _decode_cid("not-a-cid") is None
        assert _decode_cid("bZZZZ") is None
        assert _decode_cid("qmfoo") is None

    def test_scrape_filters_and_keeps_latest(self):
        chain = Chain()
        registry = ENSRegistry(chain)
        registrar = EthRegistrar(registry, chain)
        resolver = PublicResolver(chain, registry, "0xr")
        node = registrar.register("site", "0xowner")
        registry.set_resolver(node, resolver.address, caller="0xowner")
        rng = random.Random(2)
        first, second = CID.generate(rng), CID.generate(rng)
        resolver.set_contenthash(node, Contenthash("ipfs-ns", first.to_base32()), "0xowner")
        chain.mine(10)
        resolver.set_contenthash(node, Contenthash("ipfs-ns", second.to_base32()), "0xowner")
        # Non-IPFS record that must be filtered out.
        other = registrar.register("swarm", "0xo2")
        registry.set_resolver(other, resolver.address, caller="0xo2")
        resolver.set_contenthash(other, Contenthash("swarm-ns", "abcd"), "0xo2")
        result = ENSContenthashScraper(chain, ["0xr"]).scrape()
        assert result.contenthash_events == 3
        assert len(result.records) == 1
        assert result.records[0].cid == second  # latest wins

    def test_requires_resolvers(self):
        with pytest.raises(ValueError):
            ENSContenthashScraper(Chain(), [])


class TestSeeding:
    def test_seed_produces_scrapable_world(self):
        catalog = ContentCatalog(random.Random(3))
        catalog.mint_platform_set("web3.storage", 30)
        world = seed_ens_world(catalog, ENSSeedConfig(num_names=40), random.Random(4))
        scraper = ENSContenthashScraper(
            world.chain, [r.address for r in world.resolvers]
        )
        result = scraper.scrape()
        assert len(result.records) == 40  # swarm names filtered out
        decoded = result.cids()
        assert len(decoded) == 40
