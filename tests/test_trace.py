"""Structured event tracing: tracer, sampling, audit, Perfetto, campaign wiring."""

import json

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.obs import (
    AuditReport,
    NULL_TRACER,
    NullTracer,
    ProgressReporter,
    Tracer,
    audit_trace,
    chrome_trace,
    deterministic_trace_view,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_trace,
    use_tracer,
    write_chrome_trace,
    write_trace,
)
from repro.obs import trace as obs_trace
from repro.obs.trace import BEGIN, END, INSTANT, event_to_record, record_to_event
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    """Tests must not leak an installed tracer into each other."""
    yield
    disable_tracing()


class TestTracer:
    def test_span_emits_begin_end_with_causal_ids(self):
        tracer = Tracer(origin="t")
        with tracer.span("outer", kind="demo") as outer:
            tracer.event("tick", n=1)
            with tracer.span("inner") as inner:
                pass
        events = tracer.events()
        assert [e.etype for e in events] == [BEGIN, INSTANT, BEGIN, END, END]
        assert all(e.trace_id == outer.trace_id for e in events)
        begin = events[0]
        assert begin.name == "outer" and begin.parent_id is None
        assert begin.attrs == {"kind": "demo"}
        assert events[1].parent_id == outer.span_id  # instant borrows the span
        assert events[2].parent_id == outer.span_id  # nesting is causal
        assert events[2].span_id == inner.span_id != outer.span_id

    def test_root_spans_open_new_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        traces = {event.trace_id for event in tracer.events()}
        assert traces == {1, 2}

    def test_note_lands_on_end_event(self):
        tracer = Tracer()
        with tracer.span("lookup") as span:
            span.note(reason="done", rounds=3)
        end = tracer.events()[-1]
        assert end.etype == END
        assert end.attrs == {"reason": "done", "rounds": 3}

    def test_span_error_tagging(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("phase") as span:
                span.note(partial=True)
                raise RuntimeError("boom")
        end = tracer.events()[-1]
        assert end.etype == END
        assert end.attrs["error"] is True
        assert end.attrs["error_type"] == "RuntimeError"
        assert end.attrs["partial"] is True

    def test_instant_outside_spans_is_trace_zero(self):
        tracer = Tracer()
        tracer.event("exec.submit", task="0")
        event = tracer.events()[0]
        assert event.trace_id == 0 and event.parent_id is None

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.event(f"e{index}")
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [event.name for event in tracer.events()] == ["e6", "e7", "e8", "e9"]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_meta_record_accounting(self):
        tracer = Tracer(origin="m", seed=7, sample=2, capacity=8)
        for _ in range(3):
            with tracer.span("s"):
                pass
        meta = tracer.meta_record()
        assert meta["type"] == "meta"
        assert meta["origin"] == "m"
        assert meta["traces"] == 3
        assert meta["emitted"] + meta["muted"] == tracer.emitted + tracer.muted
        records = tracer.records()
        assert records[0] == meta  # meta always leads the stream

    def test_record_round_trip(self):
        tracer = Tracer(origin="rt")
        with tracer.span("s", a=1):
            tracer.event("i", b=2)
        for event in tracer.events():
            record = event_to_record(event)
            rebuilt = record_to_event(record)
            assert event_to_record(rebuilt) == record


class TestSampling:
    def test_sample_one_keeps_everything(self):
        tracer = Tracer(sample=1)
        for _ in range(10):
            with tracer.span("s"):
                tracer.event("i")
        assert tracer.muted == 0

    def test_sampling_mutes_whole_trees(self):
        tracer = Tracer(seed=3, sample=4)
        for _ in range(64):
            with tracer.span("s"):
                tracer.event("i")
                with tracer.span("nested"):
                    pass
        assert 0 < tracer.muted < 64 * 4
        # every surviving tree is complete: balanced begins/ends plus
        # its instant, so event count is a multiple of 5
        assert tracer.emitted % 5 == 0
        kept_traces = {event.trace_id for event in tracer.events()}
        assert len(kept_traces) == tracer.emitted // 5

    def test_sampling_is_a_pure_function_of_seed_and_index(self):
        def kept(seed):
            tracer = Tracer(seed=seed, sample=3)
            for _ in range(40):
                with tracer.span("s"):
                    pass
            return {event.trace_id for event in tracer.events()}

        assert kept(11) == kept(11)
        assert kept(11) != kept(12)  # astronomically unlikely to collide

    def test_span_ids_stay_deterministic_under_sampling(self):
        """Span ids are allocated only for sampled trees, so the id
        sequence does not depend on how interleaved muted trees are."""
        tracer = Tracer(seed=5, sample=2)
        ids = []
        for _ in range(20):
            with tracer.span("s") as span:
                ids.append(span.span_id)
        sampled = [span_id for span_id in ids if span_id]
        assert sampled == list(range(1, len(sampled) + 1))


class TestRingBufferProperty:
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        total=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_eviction_keeps_newest_suffix_in_order(self, capacity, total):
        tracer = Tracer(capacity=capacity)
        for index in range(total):
            tracer.event(f"e{index}")
        names = [event.name for event in tracer.events()]
        expected = [f"e{i}" for i in range(max(0, total - capacity), total)]
        assert names == expected
        seqs = [event.seq for event in tracer.events()]
        assert seqs == sorted(seqs)
        assert tracer.dropped == max(0, total - capacity)


class TestActiveTracer:
    def test_defaults_to_null_tracer(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("s") as span:
            span.note(x=1)
            NULL_TRACER.event("i")
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.records() == []
        assert not NULL_TRACER.enabled

    def test_module_helpers_hit_installed_tracer(self):
        tracer = enable_tracing(origin="helpers")
        with obs_trace.trace_span("s"):
            obs_trace.trace_event("i")
        disable_tracing()
        obs_trace.trace_event("swallowed")
        assert [event.name for event in tracer.events()] == ["s", "i", "s"]

    def test_use_tracer_restores_previous(self):
        outer = Tracer(origin="outer")
        obs_trace.set_tracer(outer)
        inner = Tracer(origin="inner")
        with use_tracer(inner):
            obs_trace.trace_event("in")
        obs_trace.trace_event("out")
        assert [event.name for event in inner.events()] == ["in"]
        assert [event.name for event in outer.events()] == ["out"]


class TestPersistence:
    def _sample_records(self):
        tracer = Tracer(origin="disk")
        with tracer.span("s", a=1):
            tracer.event("i")
        return tracer.records()

    @pytest.mark.parametrize("suffix", [".trace", ".jsonl", ".sqlite"])
    def test_file_round_trip(self, tmp_path, suffix):
        records = self._sample_records()
        path = tmp_path / f"run{suffix}"
        assert write_trace(records, path) == len(records)
        assert read_trace(path) == records
        # overwrites, never appends
        write_trace(records, path)
        assert read_trace(path) == records

    def test_backend_round_trip(self):
        from repro.store import MemoryBackend

        backend = MemoryBackend()
        records = self._sample_records()
        write_trace(records, backend)
        assert read_trace(backend) == records

    def test_eventlog_round_trip_via_codec(self, tmp_path):
        from repro.store import TRACE_CODEC, EventLog, open_store

        tracer = Tracer(origin="log", clock=lambda: 42.0)
        with tracer.span("s"):
            tracer.event("i")
        log = EventLog(TRACE_CODEC, open_store(f"jsonl:{tmp_path}/events.jsonl"))
        for event in tracer.events():
            log.append(event)
        log.flush()
        loaded = list(log)
        assert [event.name for event in loaded] == ["s", "i", "s"]
        assert all(event.sim_time == 42.0 for event in loaded)
        # windowed queries use the sim clock
        assert len(list(log.window(41.0, 43.0))) == 3


class TestChromeTrace:
    def test_export_shape_and_balance(self, tmp_path):
        tracer = Tracer(origin="main")
        with tracer.span("campaign"):
            tracer.event("phase.begin", phase="build")
            with tracer.span("lookup.find_node"):
                pass
        path = tmp_path / "out.json"
        count = write_chrome_trace(tracer.records(), path)
        payload = json.loads(path.read_text())  # validates as JSON
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == count
        phases = [event["ph"] for event in events]
        assert phases.count("B") == phases.count("E") == 2
        assert phases.count("M") == 1  # process_name metadata
        instants = [event for event in events if event["ph"] == "i"]
        assert instants and all(event["s"] == "t" for event in instants)
        assert payload["otherData"]["tracers"]["main"]["dropped"] == 0

    def test_timestamps_strictly_increase_per_origin(self):
        # a frozen sim clock must not collapse spans to zero width
        tracer = Tracer(origin="crawl-0", clock=lambda: 1000.0)
        with tracer.span("crawl"):
            for index in range(5):
                tracer.event("crawl.peer", index=index)
        payload = chrome_trace(tracer.records())
        timestamps = [
            event["ts"] for event in payload["traceEvents"] if event["ph"] != "M"
        ]
        assert all(b > a for a, b in zip(timestamps, timestamps[1:]))
        assert timestamps[0] == 1000 * 1_000_000

    def test_origins_become_processes(self):
        first = Tracer(origin="main")
        with first.span("a"):
            pass
        second = Tracer(origin="crawl-1")
        with second.span("b"):
            pass
        payload = chrome_trace(first.records() + second.records(include_meta=False))
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        assert names == {"main", "crawl-1"}


class TestAudit:
    def _records(self, tracer):
        return tracer.records()

    def test_clean_stream_passes(self):
        tracer = Tracer()
        with tracer.span("lookup.find_node") as span:
            tracer.event("lookup.round", round=0, best=100)
            tracer.event("lookup.round", round=1, best=40)
            span.note(reason="frontier_exhausted")
        report = audit_trace(self._records(tracer))
        assert isinstance(report, AuditReport)
        assert report.ok and not report.warnings
        assert report.checked["lookups"] == 1
        assert "no invariant violations" in report.render()

    def test_unclosed_span_is_a_violation(self):
        tracer = Tracer()
        span = tracer.span("crawl")
        span.__enter__()  # never exited
        report = audit_trace(self._records(tracer))
        assert not report.ok
        assert any("never closed" in finding for finding in report.violations)

    def test_end_without_begin_is_a_violation(self):
        records = [
            {"type": END, "name": "s", "origin": "m", "trace": 1, "span": 1,
             "seq": 1, "sim": 0.0, "wall": 0.0, "attrs": {}},
        ]
        report = audit_trace(records)
        assert any("end without begin" in finding for finding in report.violations)

    def test_truncated_origin_demotes_closure_to_warning(self):
        tracer = Tracer(capacity=2)
        with tracer.span("outer"):
            for index in range(8):
                tracer.event("tick", n=index)
        # the begin event was evicted; only the newest instants survive
        report = audit_trace(self._records(tracer))
        assert report.ok
        assert report.truncated == {"main": tracer.dropped}
        assert "truncated" in report.render()

    def test_lookup_round_regression_is_a_violation(self):
        tracer = Tracer()
        with tracer.span("lookup.find_node"):
            tracer.event("lookup.round", round=0, best=100)
            tracer.event("lookup.round", round=0, best=90)
        report = audit_trace(self._records(tracer))
        assert any("round index" in finding for finding in report.violations)

    def test_lookup_distance_increase_is_a_violation(self):
        tracer = Tracer()
        with tracer.span("lookup.find_providers"):
            tracer.event("lookup.round", round=0, best=50)
            tracer.event("lookup.round", round=1, best=75)
        report = audit_trace(self._records(tracer))
        assert any("distance increased" in finding for finding in report.violations)

    def test_recv_before_sent_is_a_violation(self):
        tracer = Tracer()
        with tracer.span("lookup.find_node"):
            tracer.event("msg.query", ok=True, sent=10.0, recv=9.0)
        report = audit_trace(self._records(tracer))
        assert any("received before sent" in finding for finding in report.violations)

    def test_relay_discipline_violations(self):
        tracer = Tracer()
        tracer.event("relay.assign", client_nat=False, relay_server=True)
        tracer.event("relay.assign", client_nat=True, relay_server=False)
        report = audit_trace(self._records(tracer))
        assert len(report.violations) == 2

    def test_exec_lifecycle_accounting(self):
        tracer = Tracer()
        tracer.event("exec.submit", task="0")
        tracer.event("exec.retry", task="0")
        tracer.event("exec.done", task="0", attempts=2)
        tracer.event("exec.submit", task="1")
        tracer.event("exec.done", task="1", attempts=2)  # no retry seen
        report = audit_trace(self._records(tracer))
        assert any("retry count mismatch" in finding for finding in report.violations)
        assert report.checked["tasks"] == 2

    def test_exec_error_cross_check(self):
        from repro.exec.engine import ExecError

        tracer = Tracer()
        tracer.event("exec.submit", task="3")
        tracer.event("exec.retry", task="3")
        tracer.event("exec.failed", task="3", attempts=2, stage="task")
        errors = [ExecError(task_id=3, error="boom", attempts=2)]
        assert audit_trace(self._records(tracer), exec_errors=errors).ok
        # an ExecError with no matching trace event is a violation
        ghost = [ExecError(task_id=9, error="boom", attempts=2)]
        report = audit_trace(self._records(tracer), exec_errors=ghost)
        assert not report.ok


class TestProgressReporter:
    class _FakeStream:
        def __init__(self):
            self.chunks = []

        def write(self, text):
            self.chunks.append(text)

        def flush(self):
            pass

    def test_throttles_by_wall_clock(self):
        stream = self._FakeStream()
        now = [0.0]
        reporter = ProgressReporter(stream=stream, interval=1.0, clock=lambda: now[0])
        reporter.update("simulate", 1, 10)
        reporter.update("simulate", 2, 10)  # inside the interval: skipped
        now[0] = 2.0
        reporter.update("simulate", 3, 10)
        assert reporter.renders == 2

    def test_force_and_finish(self):
        stream = self._FakeStream()
        reporter = ProgressReporter(stream=stream, interval=3600.0, clock=lambda: 0.0)
        reporter.update("simulate", 1, 4)
        reporter.update("crawl-drain", 4, 4, force=True)
        reporter.finish("done")
        text = "".join(stream.chunks)
        assert "simulate" in text and "crawl-drain" in text
        # the final message overwrites the heartbeat line (padded) and
        # releases the terminal with a newline
        assert "done" in text and text.endswith("\n")

    def test_shows_tracer_occupancy(self):
        stream = self._FakeStream()
        now = [0.0]
        reporter = ProgressReporter(stream=stream, interval=0.5, clock=lambda: now[0])
        tracer = Tracer(capacity=10)
        for _ in range(5):
            tracer.event("e")
        reporter.update("simulate", 1, 2, tracer=tracer)
        now[0] = 1.0
        reporter.update("simulate", 2, 2, tracer=tracer)
        text = "".join(stream.chunks)
        assert "buf 50%" in text


def _traced_config(workers: int) -> ScenarioConfig:
    return ScenarioConfig(
        profile=WorldProfile(online_servers=120, seed=91),
        days=1,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        workers=workers,
        trace=True,
        # large enough that nothing is evicted — the deterministic view
        # is only defined for whole streams (meta dropped == 0)
        trace_buffer=1 << 20,
    )


@pytest.fixture(scope="module")
def traced_campaigns():
    serial = run_campaign(_traced_config(workers=1))
    parallel = run_campaign(_traced_config(workers=4))
    return serial, parallel


class TestCampaignTracing:
    def test_tracing_disabled_by_default(self):
        config = ScenarioConfig()
        assert config.trace is False
        result_attrs = ScenarioConfig(trace=False)
        assert result_attrs.trace_sample == 1

    def test_result_carries_trace(self, traced_campaigns):
        serial, _ = traced_campaigns
        assert serial.trace is not None
        metas = [record for record in serial.trace if record.get("type") == "meta"]
        origins = {meta["origin"] for meta in metas}
        assert "main" in origins
        assert any(origin.startswith("crawl-") for origin in origins)
        assert all(meta["dropped"] == 0 for meta in metas)
        names = {record.get("name") for record in serial.trace}
        assert {"lookup.find_providers", "providers.fetch", "crawl", "crawl.peer",
                "phase.begin", "msg.query", "exec.submit"} <= names

    def test_worker_count_trace_parity(self, traced_campaigns):
        """workers=1 and workers=4 must agree on the deterministic view:
        same events, same causal ids, same sim timestamps."""
        serial, parallel = traced_campaigns
        assert deterministic_trace_view(serial.trace) == deterministic_trace_view(
            parallel.trace
        )

    def test_audit_passes_on_campaign_trace(self, traced_campaigns):
        serial, parallel = traced_campaigns
        for result in (serial, parallel):
            report = audit_trace(result.trace, exec_errors=result.exec_errors)
            assert report.ok, report.render()
            assert not report.warnings
            assert report.checked["lookups"] > 0
            assert report.checked["messages"] > 0

    def test_campaign_does_not_install_global_tracer(self, traced_campaigns):
        assert get_tracer() is NULL_TRACER

    def test_trace_out_writes_file(self, tmp_path):
        import dataclasses

        config = dataclasses.replace(
            _traced_config(workers=1),
            days=1,
            trace_sample=4,
            trace_out=str(tmp_path / "run.trace"),
        )
        result = run_campaign(config)
        assert result.trace_path == str(tmp_path / "run.trace")
        records = read_trace(result.trace_path)
        assert records == result.trace
        metas = [record for record in records if record.get("type") == "meta"]
        assert any(meta["muted"] > 0 for meta in metas)  # sampling engaged

    def test_trace_sample_parity(self):
        """Sampling keys on (seed, tree index), so workers=1 and
        workers=4 keep the same trees."""
        import dataclasses

        base = dataclasses.replace(_traced_config(workers=1), trace_sample=3)
        serial = run_campaign(base)
        parallel = run_campaign(dataclasses.replace(base, workers=4))
        assert deterministic_trace_view(serial.trace) == deterministic_trace_view(
            parallel.trace
        )


class TestTraceCli:
    def _write_sample(self, tmp_path):
        tracer = Tracer(origin="main")
        with tracer.span("lookup.find_node"):
            tracer.event("lookup.round", round=0, best=10)
        path = tmp_path / "run.trace"
        write_trace(tracer.records(), path)
        return path

    def test_audit_ok_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_sample(tmp_path)
        assert main(["obs", "audit", str(path)]) == 0
        assert "no invariant violations" in capsys.readouterr().out

    def test_audit_violation_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        records = [
            {"type": END, "name": "s", "origin": "m", "trace": 1, "span": 1,
             "seq": 1, "sim": 0.0, "wall": 0.0, "attrs": {}},
        ]
        path = tmp_path / "bad.trace"
        write_trace(records, path)
        assert main(["obs", "audit", str(path)]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_audit_json_format(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_sample(tmp_path)
        assert main(["obs", "audit", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []

    def test_trace_export(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_sample(tmp_path)
        out = tmp_path / "run.json"
        assert main(["obs", "trace-export", str(path), "--perfetto", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "audit", str(tmp_path / "nope.trace")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestFrontDoor:
    def test_public_surface(self):
        assert repro.Tracer is Tracer
        assert repro.audit_trace is audit_trace
        assert repro.chrome_trace is chrome_trace
        assert repro.write_trace is write_trace
        assert repro.read_trace is read_trace
        assert repro.write_chrome_trace is write_chrome_trace
