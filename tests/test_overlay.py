"""The overlay: join/leave mechanics, stale entries, relays, providers."""

import pytest

from repro.ids.cid import CID
from repro.netsim.network import Overlay, ProviderRegistry, in_degree_counts  # noqa: F401 - shim tested below
from repro.netsim.node import Node
from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile
import random


@pytest.fixture()
def overlay():
    world = build_world(WorldProfile(online_servers=150, seed=21))
    overlay = Overlay(world)
    overlay.bootstrap()
    return overlay


class TestBootstrap:
    def test_online_population_near_target(self, small_overlay):
        assert len(small_overlay.oracle) == pytest.approx(300, rel=0.12)

    def test_every_online_server_has_routing_table(self, small_overlay):
        for node in small_overlay.online_servers():
            assert node.routing_table is not None
            assert len(node.routing_table) > 0

    def test_nat_clients_not_in_oracle(self, small_overlay):
        for node in small_overlay.online_nat_clients():
            assert node.peer not in small_overlay.oracle

    def test_nat_clients_have_relays(self, small_overlay):
        with_relay = [
            node for node in small_overlay.online_nat_clients() if node.relay is not None
        ]
        assert len(with_relay) > 0
        for node in with_relay:
            assert node.relay.is_dht_server

    def test_routing_tables_reference_only_servers(self, small_overlay):
        nat_peers = {n.peer for n in small_overlay.online_nat_clients()}
        for node in list(small_overlay.online_by_peer.values())[:50]:
            if node.routing_table is None:
                continue
            assert not (set(node.routing_table.peers()) & nat_peers)


class TestJoinLeave:
    def test_leave_removes_from_registry_and_oracle(self, overlay):
        node = overlay.online_servers()[0]
        peer = node.peer
        overlay.take_offline(node)
        assert peer not in overlay.online_by_peer
        assert peer not in overlay.oracle
        assert node.routing_table is None

    def test_stale_entries_linger_after_leave(self, overlay):
        node = overlay.online_servers()[0]
        peer = node.peer
        assert overlay.in_degree(peer) > 0
        overlay.take_offline(node)
        still_referencing = sum(
            1
            for holder in overlay.online_by_peer.values()
            if holder.routing_table is not None and peer in holder.routing_table
        )
        assert still_referencing > 0  # ghosts until refresh

    def test_refresh_evicts_dead_entries(self, overlay):
        node = overlay.online_servers()[0]
        peer = node.peer
        overlay.take_offline(node)
        overlay.stale_detect_prob = 1.0
        overlay.refresh_all()
        for holder in overlay.online_by_peer.values():
            if holder.routing_table is not None:
                assert peer not in holder.routing_table

    def test_rejoin_reuses_identity_without_rotation(self, overlay):
        node = overlay.online_servers()[1]
        peer, ips = node.peer, list(node.ips)
        overlay.take_offline(node)
        overlay.bring_online(node)
        assert node.peer == peer
        assert node.ips == ips

    def test_rejoin_with_rotation_changes_ips_only(self, overlay):
        node = overlay.online_servers()[2]
        peer, ips = node.peer, list(node.ips)
        overlay.take_offline(node)
        overlay.bring_online(node, rotate_ip=True)
        assert node.peer == peer
        assert node.ips != ips

    def test_rejoin_with_regen_changes_peer_id(self, overlay):
        node = overlay.online_servers()[3]
        peer = node.peer
        overlay.take_offline(node)
        overlay.bring_online(node, regen_peer=True)
        assert node.peer != peer

    def test_mid_session_rotation(self, overlay):
        node = overlay.online_servers()[4]
        peer, ips = node.peer, list(node.ips)
        overlay.rotate_addresses(node)
        assert node.peer == peer
        assert node.ips != ips
        # Announced addresses follow.
        info = overlay.peer_infos([peer])[0]
        assert {addr.ip for addr in info.addrs} == {node.primary_ip_str} | {
            addr.ip for addr in info.addrs
        }


class TestQueries:
    def test_dial_offline_peer_fails(self, overlay):
        node = overlay.online_servers()[0]
        peer = node.peer
        overlay.take_offline(node)
        assert overlay.dial(peer) is None

    def test_dial_honors_timeout(self, overlay):
        node = next(n for n in overlay.online_servers() if n.reachable)
        assert overlay.dial(node.peer, timeout=node.response_latency + 1) is node
        assert overlay.dial(node.peer, timeout=node.response_latency / 2) is None

    def test_find_node_query_returns_peer_infos(self, overlay):
        node = next(n for n in overlay.online_servers() if n.reachable)
        query = overlay.find_node_query(timeout=1e9)
        result = query(node.peer, node.peer.dht_key)
        assert result is not None
        assert all(info.addrs for info in result if info.peer in overlay.online_by_peer)


class TestProviders:
    def test_publish_and_resolve(self, overlay):
        node = next(n for n in overlay.online_servers() if n.reachable)
        cid = CID.generate(random.Random(1))
        record = overlay.publish_provider_record(node, cid)
        assert record is not None
        assert overlay.providers.has_records(cid, overlay.now)
        resolver_peer = overlay.resolvers_for(cid)[0]
        resolver = overlay.online_by_peer[resolver_peer]
        records = overlay.provider_records_at(resolver, cid)
        assert any(r.provider == node.peer for r in records)

    def test_non_resolver_returns_nothing(self, overlay):
        node = overlay.online_servers()[0]
        cid = CID.generate(random.Random(2))
        overlay.publish_provider_record(node, cid)
        resolvers = set(overlay.resolvers_for(cid))
        outsider = next(
            n for n in overlay.online_servers() if n.peer not in resolvers
        )
        assert overlay.provider_records_at(outsider, cid) == []

    def test_nat_provider_advertises_circuit_address(self, overlay):
        nat = next(iter(overlay.online_nat_clients()))
        cid = CID.generate(random.Random(3))
        record = overlay.publish_provider_record(nat, cid)
        assert record is not None
        assert record.is_relayed
        assert record.addrs[0].relay == nat.relay.peer

    def test_reachability_of_nat_record_follows_relay(self, overlay):
        nat = next(iter(overlay.online_nat_clients()))
        cid = CID.generate(random.Random(4))
        record = overlay.publish_provider_record(nat, cid)
        assert overlay.is_provider_reachable(record)
        overlay.take_offline(nat)
        assert not overlay.is_provider_reachable(record)

    def test_registry_ttl(self):
        registry = ProviderRegistry(ttl=10.0)
        from repro.kademlia.providers import ProviderRecord
        from repro.ids.multiaddr import Multiaddr
        from repro.ids.peerid import PeerID

        rng = random.Random(5)
        provider = PeerID.generate(rng)
        cid = CID.generate(rng)
        record = ProviderRecord(
            cid=cid, provider=provider,
            addrs=(Multiaddr.direct("1.2.3.4", 4001, provider),), published_at=0.0,
        )
        registry.add(record)
        assert registry.get(cid, now=5.0) == [record]
        assert registry.get(cid, now=15.0) == []

    def test_registry_caps_providers_per_cid(self):
        registry = ProviderRegistry(max_per_cid=5)
        from repro.kademlia.providers import ProviderRecord
        from repro.ids.multiaddr import Multiaddr
        from repro.ids.peerid import PeerID

        rng = random.Random(6)
        cid = CID.generate(rng)
        for index in range(10):
            provider = PeerID.generate(rng)
            registry.add(
                ProviderRecord(
                    cid=cid, provider=provider,
                    addrs=(Multiaddr.direct("1.2.3.4", 4001, provider),),
                    published_at=float(index),
                )
            )
        records = registry.get(cid, now=1.0)
        assert len(records) == 5
        # The oldest were evicted.
        assert min(r.published_at for r in records) == 5.0

    def test_registry_oldest_tracking_survives_eviction(self):
        """Regression: eviction used to leave the per-CID ``_oldest`` floor
        pointing at the evicted record, forcing a futile prune on every
        subsequent ``get`` once the stale floor crossed the TTL."""
        registry = ProviderRegistry(ttl=100.0, max_per_cid=3)
        from repro.kademlia.providers import ProviderRecord
        from repro.ids.multiaddr import Multiaddr
        from repro.ids.peerid import PeerID

        rng = random.Random(7)
        cid = CID.generate(rng)
        for published_at in range(4):
            provider = PeerID.generate(rng)
            registry.add(
                ProviderRecord(
                    cid=cid, provider=provider,
                    addrs=(Multiaddr.direct("1.2.3.4", 4001, provider),),
                    published_at=float(published_at),
                )
            )
        survivors = registry.get(cid, now=4.0)
        assert [r.published_at for r in survivors] == [1.0, 2.0, 3.0]
        # The floor follows the surviving records, not the evicted one.
        assert registry._oldest[cid] == 1.0
        # At a time past the *evicted* record's expiry but before any
        # survivor's, everything must still be served.
        assert len(registry.get(cid, now=100.5)) == 3
        assert registry.has_records(cid, now=100.5)


class TestInDegree:
    def test_counts_only_live_holders(self, overlay):
        counts = overlay.in_degrees()
        assert counts
        popular = max(counts, key=counts.get)
        assert counts[popular] > 1

    def test_advertise_presence_raises_in_degree(self, overlay):
        node = overlay.online_servers()[5]
        before = overlay.in_degrees().get(node.peer, 0)
        inserted = overlay.advertise_presence(node, attempts=100)
        after = overlay.in_degrees().get(node.peer, 0)
        assert after >= before
        assert after - before <= 100
        assert inserted >= 0

    def test_in_degree_matches_table_scan(self, overlay):
        """The public API equals a brute-force scan of live routing tables."""
        counts = overlay.in_degrees()
        for node in overlay.online_servers()[:20]:
            peer = node.peer
            scanned = sum(
                1
                for holder in overlay.online_by_peer.values()
                if holder.routing_table is not None and peer in holder.routing_table
            )
            assert overlay.in_degree(peer) == scanned
            assert counts.get(peer, 0) == scanned

    def test_in_degree_drops_with_departing_holder(self, overlay):
        node = overlay.online_servers()[0]
        peer = node.peer
        holder = next(
            n
            for n in overlay.online_servers()
            if n is not node and n.routing_table is not None and peer in n.routing_table
        )
        before = overlay.in_degree(peer)
        overlay.take_offline(holder)
        assert overlay.in_degree(peer) == before - 1

    def test_module_level_counts_delegate_with_deprecation(self, overlay):
        with pytest.warns(DeprecationWarning, match="in_degrees"):
            counts = in_degree_counts(overlay)
        assert counts == overlay.in_degrees()


class TestRelayIndex:
    def test_pick_relay_matches_registry_scan(self, overlay):
        """The indexed relay pool draws the same node the O(N) scan over
        ``online_by_peer`` would, from the same RNG state."""
        overlay.pick_relay()  # settle lazy capability sampling
        for _ in range(10):
            state = overlay.rng.getstate()
            picked = overlay.pick_relay()
            overlay.rng.setstate(state)
            servers = [
                node
                for node in overlay.online_by_peer.values()
                if node.is_dht_server and overlay._is_relay_capable(node)
            ]
            assert picked is overlay.rng.choice(servers)

    def test_pick_relay_tracks_churn(self, overlay):
        overlay.pick_relay()
        victim = overlay.pick_relay()
        overlay.take_offline(victim)
        for _ in range(50):
            relay = overlay.pick_relay()
            assert relay is not victim
            assert relay.online
        overlay.bring_online(victim)
        assert any(overlay.pick_relay() is victim for _ in range(200))

    def test_pick_relay_excludes_requester(self, overlay):
        overlay.pick_relay()
        some_relay = overlay.pick_relay()
        for _ in range(100):
            assert overlay.pick_relay(exclude=some_relay) is not some_relay


class TestRefreshSkip:
    @staticmethod
    def _build(seed, skip_enabled):
        world = build_world(WorldProfile(online_servers=120, seed=seed))
        overlay = Overlay(world)
        overlay.refresh_skip_enabled = skip_enabled
        overlay.bootstrap()
        return overlay

    @staticmethod
    def _fingerprint(overlay):
        tables = {}
        for node in overlay.online_servers():
            tables[node.spec.index] = tuple(
                peer.digest for peer in node.routing_table.peers()
            )
        return tables

    def test_skip_is_bit_identical_to_full_pass(self):
        """Skipping certified-clean nodes perturbs neither the network
        state nor the shared RNG stream, across churn and repeated
        passes."""
        fast = self._build(31, skip_enabled=True)
        slow = self._build(31, skip_enabled=False)
        for step in range(3):
            for overlay in (fast, slow):
                servers = overlay.online_servers()
                overlay.take_offline(servers[7 + step])
                overlay.take_offline(servers[23 + step])
                overlay.refresh_all()
                overlay.refresh_all()  # second pass exercises the skips
                offline = [n for n in overlay.nodes if not n.online and n.is_dht_server]
                overlay.bring_online(offline[0])
                overlay.refresh_all()
            assert fast.rng.getstate() == slow.rng.getstate()
            assert self._fingerprint(fast) == self._fingerprint(slow)

    def test_quiescent_passes_mark_nodes_clean(self):
        # Not every node can be certified: a bucket holding its whole
        # range but still under-full keeps sampling (and consuming RNG)
        # every pass, so skipping such a node would change the RNG
        # stream.  Quiescence therefore yields a *partial* clean set —
        # assert it is substantial and that it persists (never shrinks)
        # across further churn-free passes.
        overlay = self._build(33, skip_enabled=True)
        overlay.refresh_all()
        overlay.refresh_all()
        clean = set(overlay._refresh_clean)
        assert len(clean) > 0.2 * len(overlay.online_servers())
        overlay.refresh_all()
        assert overlay._refresh_clean >= clean

    def test_churn_dirties_affected_nodes(self):
        overlay = self._build(35, skip_enabled=True)
        overlay.refresh_all()
        overlay.refresh_all()
        victim = overlay.online_servers()[3]
        holders = [
            n
            for n in overlay.online_servers()
            if n is not victim
            and n.routing_table is not None
            and victim.peer in n.routing_table
            and n in overlay._refresh_clean
        ]
        assert holders
        overlay.take_offline(victim)
        for holder in holders:
            assert holder not in overlay._refresh_clean
