"""Population sampling from the world profile."""

import statistics

import pytest

from repro.world.population import NodeClass, PopulationBuilder, build_world
from repro.world.profiles import WorldProfile


@pytest.fixture(scope="module")
def world():
    return build_world(WorldProfile(online_servers=1000, seed=3))


class TestNodeClass:
    def test_nat_clients_are_not_dht_servers(self):
        assert not NodeClass.NAT_CLIENT.is_dht_server
        for cls in NodeClass:
            if cls is not NodeClass.NAT_CLIENT:
                assert cls.is_dht_server

    def test_behavior_keys_resolve(self):
        from repro.world.profiles import BEHAVIORS

        for cls in NodeClass:
            assert cls.behavior_key in BEHAVIORS


class TestPopulationCounts:
    def test_expected_online_servers(self, world):
        """Sum of spec uptimes ≈ the configured online target."""
        expected_online = sum(
            spec.behavior.uptime for spec in world.server_specs
        )
        assert expected_online == pytest.approx(1000, rel=0.08)

    def test_nat_population_ratio(self, world):
        assert len(world.nat_specs) == pytest.approx(
            world.profile.nat_client_ratio * 1000, rel=0.05
        )

    def test_cloud_share_of_expected_online(self, world):
        cloud = sum(
            spec.behavior.uptime
            for spec in world.server_specs
            if spec.is_cloud_hosted and spec.node_class is not NodeClass.HYBRID
        )
        total = sum(spec.behavior.uptime for spec in world.server_specs)
        assert cloud / total == pytest.approx(0.85, abs=0.05)

    def test_hybrid_specs_have_cloud_and_residential_blocks(self, world):
        hybrids = world.specs_of(NodeClass.HYBRID)
        assert hybrids, "profile should produce some hybrid (BOTH) peers"
        for spec in hybrids:
            kinds = {block.is_cloud for block in spec.blocks}
            assert kinds == {True, False}
            assert spec.num_addrs >= 2

    def test_platforms_present(self, world):
        platforms = {spec.platform for spec in world.specs_of(NodeClass.PLATFORM)}
        for expected in ("web3.storage", "nft.storage", "ipfs-bank", "hydra"):
            assert expected in platforms


class TestAttributes:
    def test_specs_have_unique_indices(self, world):
        indices = [spec.index for spec in world.specs]
        assert len(indices) == len(set(indices))

    def test_blocks_match_country(self, world):
        for spec in world.specs[:500]:
            assert any(block.country == spec.country for block in spec.blocks)

    def test_activity_weights_mean_near_one(self, world):
        weights = [
            spec.activity_weight
            for spec in world.specs
            if spec.node_class is NodeClass.CLOUD_STABLE
        ]
        # Normalized lognormal: mean 1 (sampling noise allowed).
        assert statistics.mean(weights) == pytest.approx(1.0, abs=0.35)

    def test_heavy_tail_for_fringe(self, world):
        nat = sorted(
            spec.activity_weight for spec in world.nat_specs
        )
        top1pct = sum(nat[-len(nat) // 100 :])
        assert top1pct / sum(nat) > 0.2  # a few users dominate

    def test_num_addrs_range(self, world):
        assert all(1 <= spec.num_addrs <= 3 for spec in world.specs)

    def test_databases_cover_all_blocks(self, world):
        for spec in world.specs[:300]:
            for block in spec.blocks:
                assert world.geo_db.lookup(block.base) == block.country
                assert world.cloud_db.is_cloud(block.base) == block.is_cloud


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(WorldProfile(online_servers=200, seed=42))
        b = build_world(WorldProfile(online_servers=200, seed=42))
        assert len(a.specs) == len(b.specs)
        assert [s.organisation for s in a.specs[:50]] == [s.organisation for s in b.specs[:50]]

    def test_different_seed_different_world(self):
        a = build_world(WorldProfile(online_servers=200, seed=1))
        b = build_world(WorldProfile(online_servers=200, seed=2))
        assert [s.country for s in a.specs[:50]] != [s.country for s in b.specs[:50]]
