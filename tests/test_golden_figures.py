"""Golden pins for the headline numbers of the reproduction.

A fixed-seed smoke campaign must keep reproducing the paper's headline
findings (cloud dominance of the DHT, Pareto-concentrated provider
records, cloud-heavy provider classes).  The pins carry tolerances wide
enough to absorb intentional model tweaks but tight enough that a logic
regression — a broken crawl, a mis-merged shard, a seed leak between
parallel workers — moves a number out of band.

If a deliberate change shifts these values, re-derive them by running
``ScenarioConfig.smoke()`` and update the pins in the same commit.
"""

import pytest

from repro.scenario import report


@pytest.fixture(scope="module")
def figures(smoke_campaign):
    return {
        "crawl_stats": report.crawl_stats_report(smoke_campaign),
        "fig3": report.fig3_report(smoke_campaign),
        "fig14": report.fig14_report(smoke_campaign),
        "fig15": report.fig15_report(smoke_campaign),
        "fig16": report.fig16_report(smoke_campaign),
    }


class TestCrawlGoldens:
    def test_crawl_scale(self, figures):
        stats = figures["crawl_stats"]
        assert stats["num_crawls"] == 8.0
        assert stats["avg_discovered"] == pytest.approx(577.1, rel=0.10)
        assert stats["crawlable_fraction"] == pytest.approx(0.736, abs=0.08)
        assert stats["unique_peer_ids"] == pytest.approx(732, rel=0.10)


class TestCloudShareGoldens:
    """Fig. 3: the cloud share of the DHT under each counting method."""

    def test_an_cloud_share(self, figures):
        assert figures["fig3"]["A-N"]["cloud"] == pytest.approx(0.821, abs=0.05)

    def test_gip_cloud_share(self, figures):
        assert figures["fig3"]["G-IP"]["cloud"] == pytest.approx(0.718, abs=0.05)

    def test_methodology_ordering(self, figures):
        """The paper's core methodological point survives: counting
        announced nodes (A-N) overstates cloud presence relative to
        counting genuine addresses (G-IP / G-N)."""
        fig3 = figures["fig3"]
        assert fig3["A-N"]["cloud"] > fig3["G-IP"]["cloud"] > 0.5
        assert fig3["A-N"]["cloud"] > fig3["G-N"]["cloud"]

    def test_gip_has_no_both_bucket(self, figures):
        assert "both" not in figures["fig3"]["G-IP"]


class TestProviderGoldens:
    """Figs. 14-16: who actually serves content."""

    def test_provider_class_breakdown(self, figures):
        shares = figures["fig14"]["class_shares"]
        assert shares["cloud"] == pytest.approx(0.537, abs=0.08)
        assert shares["nat-ed"] == pytest.approx(0.317, abs=0.08)
        assert shares["cloud"] > shares["nat-ed"] > shares["non-cloud"]

    def test_relays_are_cloud_hosted(self, figures):
        assert figures["fig14"]["relay_cloud_share"] == pytest.approx(0.90, abs=0.08)

    def test_pareto_top1pct_record_share(self, figures):
        """Fig. 15: the top 1 % of providers hold a grossly outsized
        share of provider records."""
        top1 = figures["fig15"]["top1pct_record_share"]
        assert top1 == pytest.approx(0.243, abs=0.06)
        assert top1 > 0.10  # 1 % of providers, >10 % of records

    def test_cid_cloud_reliance(self, figures):
        fig16 = figures["fig16"]
        assert fig16["at_least_one_cloud"] == pytest.approx(0.977, abs=0.04)
        assert fig16["cloud_only"] == pytest.approx(0.606, abs=0.08)


class TestTrafficGoldens:
    def test_traffic_class_shares(self, smoke_campaign):
        from repro.core import traffic

        shares = traffic.traffic_class_shares(smoke_campaign.hydra.log)
        assert shares["advertisement"] == pytest.approx(0.448, abs=0.06)
        assert shares["download"] == pytest.approx(0.498, abs=0.06)
        assert sum(shares.values()) == pytest.approx(1.0)
