"""Churn, presence advertising and daily address rotation."""

import pytest

from repro.netsim.churn import ChurnProcess, DailyAddressRotation, PresenceAdvertiser
from repro.netsim.network import Overlay
from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile


class TestChurnProcess:
    def test_population_stays_near_steady_state(self, churned_overlay):
        assert len(churned_overlay.oracle) == pytest.approx(300, rel=0.15)

    def test_ephemeral_nodes_cycled(self, churned_overlay):
        ephemerals = [
            node
            for node in churned_overlay.nodes
            if node.node_class is NodeClass.RESIDENTIAL_EPHEMERAL
        ]
        sessions = [node.sessions_seen for node in ephemerals]
        # After 3 days the ephemeral class should have cycled sessions.
        assert sum(sessions) > len(ephemerals) * 0.5

    def test_cloud_nodes_barely_churn(self, churned_overlay):
        cloud = [
            node
            for node in churned_overlay.nodes
            if node.node_class is NodeClass.CLOUD_STABLE
        ]
        online_share = sum(1 for node in cloud if node.online) / len(cloud)
        assert online_share > 0.9

    def test_joins_and_leaves_balanced(self):
        world = build_world(WorldProfile(online_servers=200, seed=31))
        overlay = Overlay(world)
        overlay.bootstrap()
        churn = ChurnProcess(overlay)
        churn.start()
        overlay.scheduler.run_until(2 * 86400.0)
        assert churn.joins > 0
        assert churn.leaves == pytest.approx(churn.joins, rel=0.35)


class TestDailyAddressRotation:
    def test_rotations_happen_for_fringe_not_platforms(self):
        world = build_world(WorldProfile(online_servers=200, seed=32))
        overlay = Overlay(world)
        overlay.bootstrap()
        rotation = DailyAddressRotation(overlay)
        rotation.start()
        platform_ips_before = {
            node.spec.index: list(node.ips)
            for node in overlay.nodes
            if node.node_class is NodeClass.PLATFORM and node.online
        }
        overlay.scheduler.run_until(3 * 86400.0)
        assert rotation.rotations > 0
        for node in overlay.nodes:
            if node.spec.index in platform_ips_before and node.online:
                assert node.ips == platform_ips_before[node.spec.index]


class TestPresenceAdvertiser:
    def test_filebase_gains_in_degree(self):
        world = build_world(WorldProfile(online_servers=250, seed=33))
        overlay = Overlay(world)
        overlay.bootstrap()
        filebase = [
            node for node in overlay.nodes if node.spec.platform == "filebase" and node.online
        ]
        assert filebase
        before = sum(overlay.in_degrees().get(node.peer, 0) for node in filebase)
        advertiser = PresenceAdvertiser(overlay, interval_hours=6.0)
        advertiser.start()
        overlay.scheduler.run_until(86400.0)
        after = sum(overlay.in_degrees().get(node.peer, 0) for node in filebase)
        assert after > before
