"""Concentration curves and summary statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pareto import gini_coefficient, pareto_curve, top_share

volumes_strategy = st.dictionaries(
    st.integers(), st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50
)


class TestTopShare:
    def test_uniform_distribution(self):
        volumes = {i: 1.0 for i in range(100)}
        assert top_share(volumes, 0.05) == pytest.approx(0.05)

    def test_fully_concentrated(self):
        volumes = {0: 100.0, **{i: 0.0 for i in range(1, 100)}}
        assert top_share(volumes, 0.01) == 1.0

    def test_pareto_80_20(self):
        volumes = {i: (80.0 / 20 if i < 20 else 20.0 / 80) for i in range(100)}
        assert top_share(volumes, 0.20) == pytest.approx(0.8)

    def test_empty(self):
        assert top_share({}, 0.05) == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            top_share({1: 1.0}, 0.0)
        with pytest.raises(ValueError):
            top_share({1: 1.0}, 1.5)

    @given(volumes_strategy, st.floats(min_value=0.01, max_value=1.0))
    def test_bounded(self, volumes, fraction):
        share = top_share(volumes, fraction)
        assert 0.0 <= share <= 1.0 + 1e-9

    @given(volumes_strategy)
    def test_monotone_in_fraction(self, volumes):
        shares = [top_share(volumes, f) for f in (0.1, 0.5, 1.0)]
        assert shares == sorted(shares)

    @given(volumes_strategy)
    def test_full_fraction_is_everything(self, volumes):
        if sum(volumes.values()) > 0:
            assert top_share(volumes, 1.0) == pytest.approx(1.0)


class TestParetoCurve:
    def test_endpoints(self):
        curve = pareto_curve({i: float(i + 1) for i in range(10)})
        assert curve[-1] == (1.0, pytest.approx(1.0))

    def test_monotone_nondecreasing(self):
        curve = pareto_curve({i: float((i * 37) % 11 + 1) for i in range(200)})
        ys = [y for _, y in curve]
        assert ys == sorted(ys)

    def test_concave_shape_for_skewed_input(self):
        skewed = {i: 1000.0 if i == 0 else 1.0 for i in range(100)}
        curve = pareto_curve(skewed, points=100)
        # After the first actor the curve is already above 90%.
        assert curve[0][1] > 0.9

    def test_empty(self):
        assert pareto_curve({}) == []

    def test_zero_volume(self):
        assert pareto_curve({1: 0.0}) == [(1.0, 0.0)]


class TestGini:
    def test_equal_is_zero(self):
        assert gini_coefficient({i: 5.0 for i in range(50)}) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        volumes = {0: 1000.0, **{i: 1e-9 for i in range(1, 1000)}}
        assert gini_coefficient(volumes) > 0.95

    def test_empty_and_zero(self):
        assert gini_coefficient({}) == 0.0
        assert gini_coefficient({1: 0.0}) == 0.0

    @given(volumes_strategy)
    def test_bounded(self, volumes):
        gini = gini_coefficient(volumes)
        assert -1e-9 <= gini < 1.0
