"""Property tests pinning the SoA primitives to brute-force references.

Each batched algorithm in :mod:`repro.netsim.soa` (and its call sites)
rests on a small mathematical claim — "the mirrored numpy stream equals
CPython's", "a Poisson draw is silent iff its first uniform clears
``exp(-mean)`` and consumes exactly one draw", "top-64-bit searchsorted
bounds equal the bigint bisect bounds".  These tests state each claim
against the obvious scalar reference under Hypothesis-generated inputs,
so a violation shows up as a minimal counterexample rather than as a
one-in-a-million golden-figure drift.
"""

import bisect
import dataclasses
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.ids.peerid import PeerID
from repro.netsim.clock import SECONDS_PER_HOUR, Clock, EventScheduler
from repro.netsim.oracle import KeyspaceOracle
from repro.netsim.soa import HAVE_NUMPY, MirroredRandom, SoAState
from repro.workload import _poisson
from repro.world.population import build_world
from repro.world.profiles import WorldProfile

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="installed numpy is below the supported floor"
)

KEY_BYTES = 32


def peer_from_tag(tag: int) -> PeerID:
    return PeerID((tag % (2 ** 256)).to_bytes(KEY_BYTES, "big"))


class TestMirroredRandom:
    """The numpy RandomState mirror shares CPython's MT19937 stream."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32),
        count=st.integers(min_value=0, max_value=9000),
    )
    def test_uniforms_match_sequential_random(self, seed, count):
        mirrored = random.Random(seed)
        reference = random.Random(seed)
        mirror = MirroredRandom(mirrored)
        mirror.attach()
        buffer = mirror.uniforms(count)
        assert len(buffer) >= count
        assert buffer[:count].tolist() == [reference.random() for _ in range(count)]

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32),
        drawn=st.integers(min_value=0, max_value=9000),
        consumed_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_sync_resumes_at_exact_position(self, seed, drawn, consumed_frac):
        """After ``sync_python_to(k)`` the Python RNG continues exactly
        where ``k`` sequential ``random()`` calls would have left it —
        including across chunk boundaries and with ``gauss`` state."""
        consumed = int(drawn * consumed_frac)
        mirrored = random.Random(seed)
        reference = random.Random(seed)
        mirror = MirroredRandom(mirrored)
        mirror.attach()
        mirror.uniforms(drawn)
        mirror.sync_python_to(consumed)
        for _ in range(consumed):
            reference.random()
        assert mirrored.random() == reference.random()
        assert mirrored.gauss(0.0, 1.0) == reference.gauss(0.0, 1.0)

    def test_sync_beyond_buffer_rejected(self):
        mirror = MirroredRandom(random.Random(1))
        mirror.attach()
        mirror.uniforms(10)
        with pytest.raises(ValueError):
            mirror.sync_python_to(mirror._count + 1)

    def test_draws_require_attach(self):
        mirror = MirroredRandom(random.Random(1))
        with pytest.raises(RuntimeError):
            mirror.uniforms(1)


class TestSilenceLemma:
    """The claim behind the batched tick's silence classification."""

    @settings(max_examples=200, deadline=None)
    @given(
        mean=st.floats(min_value=1e-9, max_value=30.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2 ** 32),
    )
    def test_silent_iff_first_uniform_clears_limit(self, mean, seed):
        probe = random.Random(seed)
        first = probe.random()
        rng = random.Random(seed)
        count = _poisson(mean, rng)
        if first <= math.exp(-mean):
            assert count == 0
            # ...and exactly one draw was consumed.
            assert rng.random() == probe.random()
        else:
            assert count >= 1

    @settings(max_examples=50, deadline=None)
    @given(mean=st.floats(max_value=0.0, min_value=-100.0, allow_nan=False))
    def test_nonpositive_mean_draws_nothing(self, mean):
        rng = random.Random(7)
        reference = random.Random(7)
        assert _poisson(mean, rng) == 0
        assert rng.random() == reference.random()  # zero draws consumed


class TestChurnDelayFormula:
    """The batched churn start reproduces ``expovariate`` bit-for-bit."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32),
        means=st.lists(
            st.floats(min_value=1e-3, max_value=10_000.0, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
    )
    def test_batched_delays_equal_expovariate(self, seed, means):
        scalar_rng = random.Random(seed)
        scalar = [
            scalar_rng.expovariate(1.0 / mean) * SECONDS_PER_HOUR for mean in means
        ]
        batched_rng = random.Random(seed)
        mirror = MirroredRandom(batched_rng)
        mirror.attach()
        uniforms = mirror.uniforms(len(means))[: len(means)].tolist()
        log = math.log
        batched = [
            -log(1.0 - uniforms[i]) / (1.0 / means[i]) * SECONDS_PER_HOUR
            for i in range(len(means))
        ]
        mirror.sync_python_to(len(means))
        assert batched == scalar
        assert batched_rng.random() == scalar_rng.random()


class TestScheduleMany:
    """Bulk scheduling pops in exactly sequential-``schedule_in`` order."""

    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=150,
        )
    )
    def test_pop_order_matches_sequential(self, delays):
        sequential = EventScheduler(Clock())
        order_a = []
        for position, delay in enumerate(delays):
            sequential.schedule_in(delay, lambda p=position: order_a.append(p))
        bulk = EventScheduler(Clock())
        order_b = []
        bulk.schedule_many(
            (delay, lambda p=position: order_b.append(p))
            for position, delay in enumerate(delays)
        )
        sequential.run_until(2e6)
        bulk.run_until(2e6)
        assert order_a == order_b

    def test_past_event_rejected(self):
        scheduler = EventScheduler(Clock())
        scheduler.clock.advance_to(100.0)
        with pytest.raises(ValueError):
            scheduler.schedule_many([(50.0, lambda: None)])


class TestOracleTop64Bounds:
    """Vectorized bucket bounds equal the bigint-bisect reference."""

    # Keys built from a tiny top-64 alphabet so shared-prefix ties occur.
    key_strategy = st.tuples(
        st.integers(min_value=0, max_value=5),  # top-64 "bucket"
        st.integers(min_value=0, max_value=2 ** 192 - 1),
    )

    @settings(max_examples=60, deadline=None)
    @given(
        raw=st.lists(key_strategy, min_size=1, max_size=60, unique=True),
        own_choice=st.integers(min_value=0, max_value=10 ** 9),
    )
    def test_bounds_match_range_bounds(self, raw, own_choice):
        spread = 2 ** 61  # top-64 values spaced out but colliding by design
        keys = [(top * spread << 192) | low for top, low in raw]
        oracle = KeyspaceOracle()
        peers = {}
        for key in keys:
            peer = peer_from_tag(key)
            # Only index peers whose derived dht_key we control exactly:
            # build the oracle on raw keys through the public API.
            oracle._by_key[key] = peer
            bisect.insort(oracle._keys, key)
            oracle._mirror_insert(oracle._keys.index(key), key >> (256 - 64))
            peers[key] = peer
        own_key = keys[own_choice % len(keys)]
        bounds = oracle.bucket_bounds_top64(own_key)
        own_top = own_key >> 192
        ties = sum(1 for key in keys if key >> 192 == own_top)
        if ties > 1:
            assert bounds is None
            return
        assert bounds is not None
        lows, highs = bounds
        for bucket_idx in range(64):
            shift = 256 - bucket_idx - 1
            prefix_base = ((own_key >> shift) ^ 1) << shift
            expected = oracle.range_bounds(prefix_base, bucket_idx + 1)
            assert (lows[bucket_idx], highs[bucket_idx]) == expected

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_bounds_track_public_add_remove(self, data):
        """Through the public ``add``/``remove`` API (random PeerIDs, so
        ties are cryptographically absent): bounds always valid."""
        tags = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=10 ** 12),
                min_size=2,
                max_size=40,
                unique=True,
            )
        )
        oracle = KeyspaceOracle()
        peers = [peer_from_tag(tag) for tag in tags]
        for peer in peers:
            oracle.add(peer)
        removed = data.draw(st.sets(st.sampled_from(peers), max_size=len(peers) - 1))
        for peer in removed:
            oracle.remove(peer)
        remaining = [peer for peer in peers if peer not in removed]
        own = data.draw(st.sampled_from(remaining))
        bounds = oracle.bucket_bounds_top64(own.dht_key)
        assert bounds is not None
        lows, highs = bounds
        for bucket_idx in range(64):
            shift = 256 - bucket_idx - 1
            prefix_base = ((own.dht_key >> shift) ^ 1) << shift
            assert (lows[bucket_idx], highs[bucket_idx]) == oracle.range_bounds(
                prefix_base, bucket_idx + 1
            )


@pytest.fixture(scope="module")
def tiny_world():
    return build_world(WorldProfile(online_servers=60, seed=3))


class TestSoAStateRegistry:
    """The tombstoned online registry mirrors dict insertion order."""

    @settings(max_examples=50, deadline=None)
    @given(operations=st.lists(st.integers(min_value=0, max_value=400), max_size=300))
    def test_matches_ordered_dict_reference(self, tiny_world, operations):
        state = SoAState(tiny_world)
        size = len(tiny_world.specs)
        reference = {}
        for op in operations:
            index = op % size
            if op % 3 == 0 and index in reference:
                state.set_offline(index)
                del reference[index]
            else:
                state.set_online(index)
                reference.setdefault(index, True)
        assert state.online_indices().tolist() == list(reference)
        assert state.online_count() == len(reference)
        online = state.online[: state.size]
        assert sorted(np.nonzero(online)[0].tolist()) == sorted(reference)

    def test_compaction_preserves_order(self, tiny_world):
        state = SoAState(tiny_world)
        size = len(tiny_world.specs)
        for index in range(size):
            state.set_online(index)
        # Kill more than half (forces compaction) then re-add some.
        for index in range(0, size, 2):
            state.set_offline(index)
        survivors = [index for index in range(size) if index % 2 == 1]
        assert state.online_indices().tolist() == survivors
        state.set_online(0)
        assert state.online_indices().tolist() == survivors + [0]

    def test_grow_extends_capacity(self, tiny_world):
        state = SoAState(tiny_world)
        spec = tiny_world.specs[0]
        clone = dataclasses.replace(spec, index=state.size + 500)
        state.grow(clone)
        assert state.size == clone.index + 1
        assert state.class_code[clone.index] == state.class_code[spec.index]


class TestRotationBernoulli:
    """Batched daily-rotation draws equal the scalar loop's."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32),
        probs=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=300
        ),
    )
    def test_hits_match_scalar_loop(self, seed, probs):
        scalar_rng = random.Random(seed)
        scalar_hits = [
            probability > 0 and scalar_rng.random() < probability
            for probability in probs
        ]
        batched_rng = random.Random(seed)
        prob_array = np.asarray(probs, dtype=np.float64)
        draw_mask = prob_array > 0.0
        draws = int(draw_mask.sum())
        batched_hits = np.zeros(len(probs), dtype=bool)
        if draws:
            mirror = MirroredRandom(batched_rng)
            mirror.attach()
            uniforms = mirror.uniforms(draws)[:draws]
            batched_hits[draw_mask] = uniforms < prob_array[draw_mask]
            mirror.sync_python_to(draws)
        assert batched_hits.tolist() == scalar_hits
        assert batched_rng.random() == scalar_rng.random()
