"""Gateway selection policies (§9 extension)."""

import random

import pytest

from repro.gateway.registry import PublicGatewayRegistry
from repro.gateway.selection import (
    DEFAULT_GATEWAY_DOMAIN,
    GatewaySelector,
    SelectionPolicy,
)


@pytest.fixture(scope="module")
def selector():
    return GatewaySelector(PublicGatewayRegistry(), rng=random.Random(3))


class TestSelection:
    def test_fixed_default_always_picks_default(self, selector):
        for _ in range(20):
            assert selector.select(SelectionPolicy.FIXED_DEFAULT) == DEFAULT_GATEWAY_DOMAIN

    def test_random_picks_only_functional(self, selector):
        registry = selector.registry
        for _ in range(100):
            domain = selector.select(SelectionPolicy.RANDOM_FUNCTIONAL)
            assert registry.check(domain)

    def test_random_spreads_across_operators(self, selector):
        tallies = selector.simulate(SelectionPolicy.RANDOM_FUNCTIONAL, 2200)
        assert len(tallies) == 22  # every functional gateway gets traffic

    def test_rejects_dead_default(self):
        registry = PublicGatewayRegistry()
        dead = next(e.domain for e in registry.entries if not e.functional)
        with pytest.raises(ValueError):
            GatewaySelector(registry, default_domain=dead)


class TestConcentration:
    def test_default_policy_is_maximally_concentrated(self, selector):
        metrics = selector.concentration(SelectionPolicy.FIXED_DEFAULT, requests=2000)
        assert metrics["busiest_gateway_share"] == 1.0
        assert metrics["cloud_share"] == 1.0  # the default is Cloudflare
        assert metrics["gini"] > 0.9

    def test_random_policy_decentralizes(self, selector):
        fixed = selector.concentration(SelectionPolicy.FIXED_DEFAULT, requests=2000)
        spread = selector.concentration(SelectionPolicy.RANDOM_FUNCTIONAL, requests=2000)
        assert spread["busiest_gateway_share"] < 0.12
        assert spread["gini"] < 0.2
        # Some requests now land on the self-hosted, non-cloud gateways.
        assert spread["cloud_share"] < fixed["cloud_share"]
        assert spread["cloud_share"] < 0.9
