"""Simulated time and the event scheduler."""

import pytest

from repro.netsim.clock import Clock, EventScheduler, SECONDS_PER_DAY


class TestClock:
    def test_monotonic(self):
        clock = Clock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_day_index(self):
        clock = Clock()
        assert clock.day == 0
        clock.advance_to(SECONDS_PER_DAY * 2.5)
        assert clock.day == 2


class TestScheduler:
    def test_runs_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(30.0, lambda: order.append("c"))
        scheduler.schedule(10.0, lambda: order.append("a"))
        scheduler.schedule(20.0, lambda: order.append("b"))
        scheduler.run_until(100.0)
        assert order == ["a", "b", "c"]
        assert scheduler.clock.now == 100.0

    def test_ties_run_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(5.0, lambda: order.append(1))
        scheduler.schedule(5.0, lambda: order.append(2))
        scheduler.run_until(5.0)
        assert order == [1, 2]

    def test_events_after_horizon_stay_queued(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(50.0, lambda: fired.append(True))
        executed = scheduler.run_until(49.0)
        assert executed == 0
        assert not fired
        assert len(scheduler) == 1
        assert scheduler.next_event_time == 50.0

    def test_schedule_in_relative(self):
        scheduler = EventScheduler()
        scheduler.run_until(100.0)
        fired = []
        scheduler.schedule_in(10.0, lambda: fired.append(scheduler.clock.now))
        scheduler.run_until(200.0)
        assert fired == [110.0]

    def test_rejects_past_events(self):
        scheduler = EventScheduler()
        scheduler.run_until(10.0)
        with pytest.raises(ValueError):
            scheduler.schedule(5.0, lambda: None)

    def test_event_scheduling_from_within_event(self):
        scheduler = EventScheduler()
        fired = []

        def recurring():
            fired.append(scheduler.clock.now)
            if len(fired) < 3:
                scheduler.schedule_in(10.0, recurring)

        scheduler.schedule(0.0, recurring)
        scheduler.run_until(100.0)
        assert fired == [0.0, 10.0, 20.0]

    def test_clock_lands_exactly_on_boundary(self):
        scheduler = EventScheduler()
        scheduler.run_until(33.3)
        assert scheduler.clock.now == 33.3
