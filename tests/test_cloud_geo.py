"""Cloud and geo attribution over synthetic crawl rows."""

import pytest

from repro.core import cloud as cloud_analysis
from repro.core import geo as geo_analysis
from repro.core.counting import CountingMethod, CrawlRow
from repro.ids.peerid import PeerID
from repro.world.clouddb import CloudIPDatabase
from repro.world.geodb import GeoIPDatabase
from repro.world.ipspace import IPAllocator, format_ip


def make_peer(tag):
    return PeerID(tag.to_bytes(32, "big"))


@pytest.fixture(scope="module")
def env():
    allocator = IPAllocator()
    choopa = allocator.allocate_block("choopa", "US", True, 24)
    vultr = allocator.allocate_block("vultr", "DE", True, 24)
    isp = allocator.allocate_block("isp-cn", "CN", False, 24)
    cloud_db = CloudIPDatabase(allocator.blocks)
    geo_db = GeoIPDatabase(allocator.blocks)
    ip = lambda block, offset: format_ip(block.base + offset)
    rows = [
        # Two stable choopa peers, both crawls.
        CrawlRow(0, make_peer(1), ip(choopa, 1)),
        CrawlRow(1, make_peer(1), ip(choopa, 1)),
        CrawlRow(0, make_peer(2), ip(choopa, 2)),
        CrawlRow(1, make_peer(2), ip(choopa, 2)),
        # One vultr peer present once.
        CrawlRow(0, make_peer(3), ip(vultr, 1)),
        # A CN churner with a fresh IP per crawl.
        CrawlRow(0, make_peer(4), ip(isp, 1)),
        CrawlRow(1, make_peer(5), ip(isp, 2)),
        # A mixed announcer: cloud and non-cloud in the same crawl.
        CrawlRow(1, make_peer(6), ip(choopa, 3)),
        CrawlRow(1, make_peer(6), ip(isp, 3)),
    ]
    return rows, cloud_db, geo_db


class TestCloudStatus:
    def test_a_n_includes_both_label(self, env):
        rows, cloud_db, _ = env
        shares = cloud_analysis.cloud_status_shares(rows, cloud_db, CountingMethod.A_N)
        # Per crawl: c0 = {cloud:3, non:1}; c1 = {cloud:2, non:1, both:1}.
        assert shares["cloud"] == pytest.approx(2.5 / 4)
        assert shares["non-cloud"] == pytest.approx(1.0 / 4)
        assert shares["both"] == pytest.approx(0.5 / 4)

    def test_g_ip_counts_addresses(self, env):
        rows, cloud_db, _ = env
        shares = cloud_analysis.cloud_status_shares(rows, cloud_db, CountingMethod.G_IP)
        # Unique IPs: 4 cloud (choopa 1,2,3 + vultr 1), 3 non-cloud.
        assert shares["cloud"] == pytest.approx(4 / 7)
        assert "both" not in shares

    def test_provider_shares_and_top3(self, env):
        rows, cloud_db, _ = env
        shares = cloud_analysis.provider_shares(rows, cloud_db, CountingMethod.A_N)
        top, combined = cloud_analysis.top_provider_concentration(shares, top_n=2)
        assert top[0][0] == "choopa"
        assert combined == pytest.approx(shares["choopa"] + shares["vultr"])
        assert "non-cloud" not in dict(top)

    def test_ratio_series_shapes(self, env):
        rows, cloud_db, _ = env
        series = cloud_analysis.cloud_ratio_series(rows, cloud_db, CountingMethod.G_IP)
        assert [k for k, _ in series] == [1, 2]
        assert series[1][1] < series[0][1]  # churner IPs accumulate


class TestGeo:
    def test_country_shares(self, env):
        rows, _, geo_db = env
        shares = geo_analysis.country_shares(rows, geo_db, CountingMethod.A_N)
        assert shares["US"] > shares["CN"] > 0
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unknown_ip_label(self, env):
        rows, _, geo_db = env
        extra = rows + [CrawlRow(0, make_peer(9), "0.0.0.9")]
        shares = geo_analysis.country_shares(extra, geo_db, CountingMethod.A_N)
        assert geo_analysis.UNKNOWN_COUNTRY in shares

    def test_top_countries_tail(self, env):
        rows, _, geo_db = env
        shares = geo_analysis.country_shares(rows, geo_db, CountingMethod.G_IP)
        top, outside = geo_analysis.top_countries(shares, top_n=1)
        assert len(top) == 1
        assert outside == pytest.approx(1.0 - top[0][1])
