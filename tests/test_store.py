"""The storage subsystem: backends, the EventLog facade, sharding."""

import random

import pytest

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope, MessageType, TrafficClass
from repro.monitors.bitswap_monitor import BitswapLogEntry
from repro.store import (
    BITSWAP_CODEC,
    HYDRA_CODEC,
    EventLog,
    JsonlBackend,
    MemoryBackend,
    ShardedBackend,
    SqliteBackend,
    StorageSpec,
    campaign_stores,
    copy_records,
    open_backend,
    open_file_backend,
    open_store,
    parse_spec,
)


def make_envelope(rng, timestamp, message_type=MessageType.GET_PROVIDERS, **kwargs):
    if message_type in (MessageType.GET_PROVIDERS, MessageType.ADD_PROVIDER):
        kwargs.setdefault("target_cid", CID.generate(rng))
    if kwargs.get("target_cid") is not None:
        kwargs.setdefault("target_key", kwargs["target_cid"].dht_key)
    return MessageEnvelope(
        timestamp=timestamp,
        sender=PeerID.generate(rng),
        sender_ip=f"10.1.2.{int(timestamp) % 200}",
        message_type=message_type,
        **kwargs,
    )


def backend_for(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "jsonl":
        return JsonlBackend(tmp_path / "log.jsonl", batch_size=7)
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "log.sqlite", batch_size=7)
    if kind == "sharded":
        return ShardedBackend(
            [SqliteBackend(tmp_path / f"s{i}.sqlite", batch_size=5) for i in range(3)]
        )
    raise AssertionError(kind)


BACKENDS = ("memory", "jsonl", "sqlite", "sharded")


class TestEventLogContract:
    """The list contract every consumer of ``monitor.log`` relies on."""

    @pytest.fixture(params=BACKENDS)
    def log(self, request, tmp_path):
        log = EventLog(HYDRA_CODEC, backend_for(request.param, tmp_path))
        rng = random.Random(99)
        for i in range(30):
            log.append(make_envelope(rng, float(i)))
        return log

    def test_len_and_iteration_order(self, log):
        assert len(log) == 30
        timestamps = [entry.timestamp for entry in log]
        assert timestamps == [float(i) for i in range(30)]

    def test_reversed(self, log):
        assert [e.timestamp for e in reversed(log)] == [float(i) for i in range(29, -1, -1)]

    def test_slicing(self, log):
        assert [e.timestamp for e in log[:3]] == [0.0, 1.0, 2.0]
        assert [e.timestamp for e in log[27:]] == [27.0, 28.0, 29.0]
        assert [e.timestamp for e in log[5:8]] == [5.0, 6.0, 7.0]
        assert log[10:10] == []

    def test_indexing(self, log):
        assert log[0].timestamp == 0.0
        assert log[-1].timestamp == 29.0
        with pytest.raises(IndexError):
            log[30]
        with pytest.raises(IndexError):
            log[-31]

    def test_window(self, log):
        assert [e.timestamp for e in log.window(10.0, 14.0)] == [10.0, 11.0, 12.0, 13.0]
        assert list(log.window(100.0, 200.0)) == []

    def test_tail(self, log):
        assert [e.timestamp for e in log.tail(4)] == [26.0, 27.0, 28.0, 29.0]
        assert log.tail(0) == []

    def test_entries_classify(self, log):
        assert all(e.traffic_class is TrafficClass.DOWNLOAD for e in log)


class TestRoundTrip:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_hydra_envelope_fields_survive(self, kind, tmp_path):
        rng = random.Random(3)
        log = EventLog(HYDRA_CODEC, backend_for(kind, tmp_path))
        relay = PeerID.generate(rng)
        log.append(make_envelope(rng, 1.0, via_relay=relay))
        log.append(make_envelope(rng, 2.0, MessageType.FIND_NODE, target_key=42))
        first, second = list(log)
        assert first.via_relay == relay
        assert first.target_cid is not None
        assert first.target_key == first.target_cid.dht_key
        assert second.target_key == 42
        assert second.target_cid is None
        assert second.traffic_class is TrafficClass.OTHER

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_bitswap_entries_survive(self, kind, tmp_path):
        rng = random.Random(4)
        log = EventLog(BITSWAP_CODEC, backend_for(kind, tmp_path))
        entries = [
            BitswapLogEntry(float(i), PeerID.generate(rng), "8.8.8.8", CID.generate(rng))
            for i in range(5)
        ]
        log.extend(entries)
        assert list(log) == entries


class TestPersistence:
    def test_jsonl_reopen_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        rng = random.Random(5)
        log = EventLog(HYDRA_CODEC, JsonlBackend(path))
        log.append(make_envelope(rng, 1.0))
        log.close()
        reopened = EventLog(HYDRA_CODEC, JsonlBackend(path))
        assert len(reopened) == 1
        reopened.append(make_envelope(rng, 2.0))
        reopened.close()
        assert [e.timestamp for e in EventLog(HYDRA_CODEC, JsonlBackend(path))] == [1.0, 2.0]

    def test_sqlite_reopen_appends(self, tmp_path):
        path = tmp_path / "log.sqlite"
        rng = random.Random(6)
        log = EventLog(HYDRA_CODEC, SqliteBackend(path))
        log.append(make_envelope(rng, 1.0))
        log.close()
        reopened = EventLog(HYDRA_CODEC, SqliteBackend(path))
        assert len(reopened) == 1
        reopened.append(make_envelope(rng, 2.0))
        reopened.close()
        final = EventLog(HYDRA_CODEC, SqliteBackend(path))
        assert [e.timestamp for e in final] == [1.0, 2.0]

    def test_sharded_reopen_preserves_order(self, tmp_path):
        def build():
            return ShardedBackend(
                [SqliteBackend(tmp_path / f"s{i}.sqlite") for i in range(2)]
            )

        rng = random.Random(7)
        log = EventLog(HYDRA_CODEC, build())
        for i in range(9):
            log.append(make_envelope(rng, float(i)))
        log.close()
        reopened = EventLog(HYDRA_CODEC, build())
        assert [e.timestamp for e in reopened] == [float(i) for i in range(9)]
        reopened.append(make_envelope(rng, 9.0))
        assert [e.timestamp for e in reopened] == [float(i) for i in range(10)]


class TestShardedBackend:
    def test_balanced_round_robin(self):
        shards = [MemoryBackendRecords() for _ in range(3)]
        backend = ShardedBackend(shards)
        for i in range(9):
            backend.append({"ts": float(i)})
        assert [len(shard) for shard in shards] == [3, 3, 3]

    def test_rejects_object_native_shards(self):
        with pytest.raises(ValueError):
            ShardedBackend([MemoryBackend()])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShardedBackend([])

    def test_merge_strips_seq_field(self):
        backend = ShardedBackend([MemoryBackendRecords(), MemoryBackendRecords()])
        backend.append({"ts": 1.0})
        records = list(backend.scan())
        assert records == [{"ts": 1.0}]


class MemoryBackendRecords(MemoryBackend):
    """A MemoryBackend that takes dict records (shardable in tests)."""

    stores_objects = False


class TestStorageSpec:
    def test_parse_memory(self):
        spec = parse_spec("memory")
        assert spec == StorageSpec(kind="memory")
        assert spec.is_memory and not spec.on_disk

    def test_parse_file_kinds(self):
        spec = parse_spec("sqlite:/tmp/run/x.sqlite")
        assert spec.kind == "sqlite"
        assert spec.path == "/tmp/run/x.sqlite"
        assert spec.on_disk
        assert not parse_spec("sqlite::memory:").on_disk

    def test_parse_sharded(self):
        spec = parse_spec("sharded:4:jsonl:/tmp/run/x.jsonl")
        assert spec == StorageSpec(kind="jsonl", path="/tmp/run/x.jsonl", shards=4)

    @pytest.mark.parametrize(
        "text",
        ["memory", "jsonl:/tmp/x.jsonl", "sqlite::memory:",
         "sharded:3:sqlite:/tmp/x.sqlite"],
    )
    def test_to_string_round_trips(self, text):
        spec = parse_spec(text)
        assert spec.to_string() == text
        assert parse_spec(spec.to_string()) == spec

    def test_parse_spec_passthrough(self):
        spec = StorageSpec(kind="jsonl", path="/tmp/x.jsonl")
        assert parse_spec(spec) is spec

    def test_with_path(self, tmp_path):
        spec = parse_spec("sqlite:/elsewhere/x.sqlite")
        moved = spec.with_path(tmp_path / "y.sqlite")
        assert moved.kind == "sqlite"
        assert moved.path == str(tmp_path / "y.sqlite")

    def test_open_store_accepts_every_spec_shape(self, tmp_path):
        assert isinstance(open_store(None), MemoryBackend)
        assert isinstance(open_store("memory"), MemoryBackend)
        assert isinstance(
            open_store(f"jsonl:{tmp_path}/x.jsonl"), JsonlBackend
        )
        assert isinstance(
            open_store(StorageSpec(kind="sqlite", path=":memory:")), SqliteBackend
        )
        backend = MemoryBackend()
        assert open_store(backend) is backend

    def test_open_store_sharded(self, tmp_path):
        backend = open_store(StorageSpec(kind="sqlite", path=f"{tmp_path}/x.sqlite", shards=3))
        assert isinstance(backend, ShardedBackend)
        assert len(backend.shards) == 3


class TestFactory:
    def test_memory(self):
        assert isinstance(open_backend("memory"), MemoryBackend)

    def test_jsonl_and_sqlite(self, tmp_path):
        assert isinstance(open_backend(f"jsonl:{tmp_path}/x.jsonl"), JsonlBackend)
        assert isinstance(open_backend(f"sqlite:{tmp_path}/x.sqlite"), SqliteBackend)
        assert isinstance(open_backend("sqlite::memory:"), SqliteBackend)

    def test_sharded(self, tmp_path):
        backend = open_backend(f"sharded:4:sqlite:{tmp_path}/x.sqlite")
        assert isinstance(backend, ShardedBackend)
        assert len(backend.shards) == 4

    @pytest.mark.parametrize(
        "spec",
        ["", "bogus", "memory:path", "jsonl:", "sqlite:", "sharded:x:sqlite:/p",
         "sharded:0:sqlite:/p", "sharded:2:memory"],
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            open_backend(spec)

    def test_open_file_backend_by_suffix(self, tmp_path):
        assert isinstance(open_file_backend(tmp_path / "a.jsonl"), JsonlBackend)
        assert isinstance(open_file_backend(tmp_path / "a.sqlite"), SqliteBackend)
        assert isinstance(open_file_backend(tmp_path / "a.db"), SqliteBackend)
        with pytest.raises(ValueError):
            open_file_backend(tmp_path / "a.csv")

    def test_campaign_stores_memory(self):
        stores = campaign_stores("memory")
        assert set(stores) == {"hydra", "bitswap"}
        assert all(isinstance(b, MemoryBackend) for b in stores.values())
        assert stores["hydra"] is not stores["bitswap"]

    def test_campaign_stores_directory(self, tmp_path):
        stores = campaign_stores(f"sqlite:{tmp_path}/run")
        assert str(stores["hydra"].path).endswith("hydra.sqlite")
        assert str(stores["bitswap"].path).endswith("bitswap.sqlite")

    def test_campaign_stores_sharded(self, tmp_path):
        stores = campaign_stores(f"sharded:2:jsonl:{tmp_path}/run")
        assert isinstance(stores["hydra"], ShardedBackend)
        assert len(stores["hydra"].shards) == 2


class TestCopyAndConvert:
    def test_copy_records(self, tmp_path):
        source = SqliteBackend(tmp_path / "src.sqlite")
        source.extend([{"ts": float(i), "v": i} for i in range(10)])
        destination = JsonlBackend(tmp_path / "dst.jsonl")
        assert copy_records(source, destination) == 10
        assert list(destination.scan()) == list(source.scan())

    def test_convert_log_between_formats(self, tmp_path):
        from repro.core.datasets import convert_log, write_hydra_jsonl

        rng = random.Random(8)
        entries = [make_envelope(rng, float(i)) for i in range(12)]
        jsonl_path = tmp_path / "hydra.jsonl"
        write_hydra_jsonl(entries, jsonl_path)
        sqlite_path = tmp_path / "hydra.sqlite"
        assert convert_log(jsonl_path, sqlite_path, HYDRA_CODEC) == 12
        reloaded = list(EventLog(HYDRA_CODEC, SqliteBackend(sqlite_path)))
        assert reloaded == entries


class TestMonitorsOnDisk:
    def test_hydra_on_sqlite(self, tmp_path):
        from repro.monitors.hydra import HydraBooster

        rng = random.Random(9)
        hydra = HydraBooster(num_heads=2, store=SqliteBackend(tmp_path / "h.sqlite"))
        for i in range(6):
            hydra.record(
                float(i), PeerID.generate(rng), "1.2.3.4", MessageType.GET_PROVIDERS,
                target_cid=CID.generate(rng),
            )
        assert len(hydra) == 6
        assert len(hydra.entries(TrafficClass.DOWNLOAD)) == 6
        assert len(hydra.entries(TrafficClass.OTHER)) == 0

    def test_bitswap_window_on_sqlite(self, tmp_path):
        from repro.monitors.bitswap_monitor import BitswapMonitor
        from repro.netsim.clock import SECONDS_PER_DAY

        monitor = BitswapMonitor(
            random.Random(10), store=SqliteBackend(tmp_path / "b.sqlite")
        )
        rng = random.Random(11)
        cids = [CID.generate(rng) for _ in range(4)]
        for day, cid in enumerate(cids):
            monitor.log.append(
                BitswapLogEntry(
                    day * SECONDS_PER_DAY + 10.0, PeerID.generate(rng), "2.2.2.2", cid
                )
            )
        assert monitor.cids_on_day(1) == {cids[1]}
        assert monitor.cids_in_window(0.0, 2 * SECONDS_PER_DAY) == set(cids[:2])
