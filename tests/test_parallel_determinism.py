"""Parallel execution changes wall-clock, never the science.

The contract under test: with a fixed ``ScenarioConfig.seed``, a
campaign run with ``workers=1`` and one run with ``workers=4`` produce
bit-identical crawl datasets, identical A-N / G-IP cloud shares and
identical traffic summaries — because every crawl derives its own seed
(:func:`repro.exec.seeds.derive_seed`) instead of sharing RNG state, and
the crawl itself is a pure function of a frozen, picklable task.
"""

import os
import pickle
import random

import pytest

from repro.core.counting import CountingMethod
from repro.core.crawler import (
    CrawlDataset,
    DHTCrawler,
    execute_crawl_task,
    freeze_crawl_task,
)
from repro.exec.engine import ExecError, ParallelExecutor, run_tasks
from repro.exec.seeds import derive_rng, derive_seed
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile


def parity_config(workers: int, engine: str = "auto") -> ScenarioConfig:
    return ScenarioConfig(
        profile=WorldProfile(online_servers=150, seed=77),
        days=1,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        seed=77,
        workers=workers,
        engine=engine,
    )


@pytest.fixture(scope="module")
def serial_and_parallel():
    return run_campaign(parity_config(1)), run_campaign(parity_config(4))


@pytest.fixture(scope="module")
def cross_engine_pair():
    """Both axes flipped at once: scalar engine fanned out over 4 workers
    vs the SoA engine run serially.  Parity here implies parity along
    either single axis (workers or engine) as well."""
    pytest.importorskip("numpy")
    return (
        run_campaign(parity_config(4, engine="scalar")),
        run_campaign(parity_config(1, engine="soa")),
    )


def snapshot_fingerprint(snapshot):
    return (
        snapshot.crawl_id,
        snapshot.started_at,
        snapshot.duration,
        snapshot.requests_sent,
        [(obs.peer, obs.ips, obs.crawlable) for obs in snapshot.observations.values()],
        snapshot.edges,
    )


class TestCampaignParity:
    def test_no_exec_errors(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.exec_errors == []
        assert parallel.exec_errors == []

    def test_crawl_datasets_bit_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert len(serial.crawls) == len(parallel.crawls)
        for ours, theirs in zip(serial.crawls.snapshots, parallel.crawls.snapshots):
            assert snapshot_fingerprint(ours) == snapshot_fingerprint(theirs)

    def test_cloud_shares_identical(self, serial_and_parallel):
        from repro.core import cloud as cloud_analysis

        serial, parallel = serial_and_parallel
        for method in (CountingMethod.A_N, CountingMethod.G_IP):
            assert cloud_analysis.cloud_status_shares(
                serial.crawl_rows, serial.world.cloud_db, method
            ) == cloud_analysis.cloud_status_shares(
                parallel.crawl_rows, parallel.world.cloud_db, method
            )

    def test_traffic_summaries_identical(self, serial_and_parallel):
        from repro.core import traffic

        serial, parallel = serial_and_parallel
        assert len(serial.hydra.log) == len(parallel.hydra.log)
        assert traffic.traffic_class_shares(serial.hydra.log) == (
            traffic.traffic_class_shares(parallel.hydra.log)
        )
        assert [e.sender for e in serial.hydra.log[:200]] == [
            e.sender for e in parallel.hydra.log[:200]
        ]

    def test_campaign_summaries_identical(self, serial_and_parallel):
        from repro.exec.sweep import summarize_campaign

        serial, parallel = serial_and_parallel
        ours = summarize_campaign(serial)
        theirs = summarize_campaign(parallel)
        del ours["crawl_stats"]["num_crawls"], theirs["crawl_stats"]["num_crawls"]
        assert {k: v for k, v in ours.items()} == {k: v for k, v in theirs.items()}


class TestEngineWorkersDiagonal:
    """Neither the worker count nor the tick engine may leave a trace in
    the science: ``(engine=scalar, workers=4)`` and ``(engine=soa,
    workers=1)`` must produce the same campaign bit for bit.  Requires
    numpy; on the numpy-less CI lane the fixtures skip and the workers
    axis is still covered by :class:`TestCampaignParity`."""

    def test_engines_recorded(self, cross_engine_pair):
        scalar_parallel, soa_serial = cross_engine_pair
        assert scalar_parallel.config.engine == "scalar"
        assert scalar_parallel.config.workers == 4
        assert soa_serial.config.engine == "soa"
        assert soa_serial.config.workers == 1

    def test_no_exec_errors(self, cross_engine_pair):
        scalar_parallel, soa_serial = cross_engine_pair
        assert scalar_parallel.exec_errors == []
        assert soa_serial.exec_errors == []

    def test_crawl_datasets_bit_identical(self, cross_engine_pair):
        scalar_parallel, soa_serial = cross_engine_pair
        assert len(scalar_parallel.crawls) == len(soa_serial.crawls)
        for ours, theirs in zip(
            scalar_parallel.crawls.snapshots, soa_serial.crawls.snapshots
        ):
            assert snapshot_fingerprint(ours) == snapshot_fingerprint(theirs)

    def test_monitor_logs_bit_identical(self, cross_engine_pair):
        scalar_parallel, soa_serial = cross_engine_pair
        assert list(scalar_parallel.hydra.log) == list(soa_serial.hydra.log)
        assert list(scalar_parallel.bitswap_monitor.log) == list(
            soa_serial.bitswap_monitor.log
        )

    def test_campaign_summaries_identical(self, cross_engine_pair):
        from repro.exec.sweep import summarize_campaign

        scalar_parallel, soa_serial = cross_engine_pair
        ours = summarize_campaign(scalar_parallel)
        theirs = summarize_campaign(soa_serial)
        del ours["crawl_stats"]["num_crawls"], theirs["crawl_stats"]["num_crawls"]
        assert ours == theirs


class TestCrawlTaskPurity:
    """The crawl is a pure function of its frozen task."""

    def test_execute_twice_identical(self, small_overlay):
        task = freeze_crawl_task(small_overlay, 0, seed=derive_seed(7, "crawl", 0))
        assert snapshot_fingerprint(execute_crawl_task(task)) == snapshot_fingerprint(
            execute_crawl_task(task)
        )

    def test_pickle_roundtrip_preserves_result(self, small_overlay):
        task = freeze_crawl_task(small_overlay, 3, seed=derive_seed(7, "crawl", 3))
        clone = pickle.loads(pickle.dumps(task))
        assert snapshot_fingerprint(execute_crawl_task(task)) == snapshot_fingerprint(
            execute_crawl_task(clone)
        )

    def test_freeze_does_not_mutate_overlay(self, small_overlay):
        before = dict(small_overlay.online_by_peer)
        tables_before = {
            peer: tuple(node.routing_table.peers())
            for peer, node in small_overlay.online_by_peer.items()
            if node.routing_table is not None
        }
        freeze_crawl_task(small_overlay, 0, seed=1)
        assert dict(small_overlay.online_by_peer) == before
        for peer, peers in tables_before.items():
            assert tuple(small_overlay.online_by_peer[peer].routing_table.peers()) == peers

    def test_crawl_independent_of_history(self, small_overlay):
        """Re-pin of the determinism contract on the seed-derivation
        helper: crawl ``i`` no longer depends on crawls ``0..i-1`` having
        drawn from a shared RNG — the property parallel fan-out needs."""
        warmed = DHTCrawler(small_overlay, seed=42)
        for crawl_id in range(3):
            warmed.crawl(crawl_id)
        fresh = DHTCrawler(small_overlay, seed=42)
        assert snapshot_fingerprint(warmed.crawl(3)) == snapshot_fingerprint(
            fresh.crawl(3)
        )

    def test_crawler_matches_freeze_execute(self, small_overlay):
        crawler = DHTCrawler(small_overlay, seed=42)
        direct = crawler.crawl(1)
        via_task = execute_crawl_task(crawler.task(1))
        assert snapshot_fingerprint(direct) == snapshot_fingerprint(via_task)


class TestSeedDerivation:
    def test_stable_and_distinct(self):
        assert derive_seed(77, "crawl", 3) == derive_seed(77, "crawl", 3)
        assert derive_seed(77, "crawl", 3) != derive_seed(77, "crawl", 4)
        assert derive_seed(77, "crawl", 3) != derive_seed(78, "crawl", 3)
        assert derive_seed(77, "crawl", 3) != derive_seed(77, "monitor", 3)

    def test_no_concatenation_collisions(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")
        assert derive_seed(1, 12, 3) != derive_seed(1, 1, 23)

    def test_rng_streams_independent(self):
        first = derive_rng(9, 0).random()
        assert derive_rng(9, 0).random() == first
        assert derive_rng(9, 1).random() != first

    def test_rejects_unstable_components(self):
        with pytest.raises(TypeError):
            derive_seed(1, 3.14)


# --- engine failure handling -------------------------------------------------
# Worker functions must be module-level so the pool can pickle them.


def _square(value):
    return value * value


def _fail_always(value):
    raise RuntimeError(f"task {value} exploded")


def _fail_until_marker(marker_path):
    """Fails on the first attempt, succeeds on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("transient failure")
    return "recovered"


def _die(value):
    os._exit(13)  # hard worker death: no exception, no cleanup


class TestEngine:
    def test_inline_and_pool_agree(self):
        inline, inline_errors = run_tasks(_square, list(range(12)), workers=1)
        pooled, pooled_errors = run_tasks(_square, list(range(12)), workers=3)
        assert inline == pooled == [value * value for value in range(12)]
        assert inline_errors == [] and pooled_errors == []

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failed_task_surfaces_exec_error(self, workers):
        results, errors = run_tasks(
            _fail_always, ["boom"], workers=workers, retries=1
        )
        assert results == [None]
        (error,) = errors
        assert isinstance(error, ExecError)
        assert error.attempts == 2
        assert "exploded" in error.error

    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_failure_recovers_on_retry(self, workers, tmp_path):
        marker = str(tmp_path / f"marker-{workers}")
        results, errors = run_tasks(
            _fail_until_marker, [marker], workers=workers, retries=1
        )
        assert results == ["recovered"]
        assert errors == []

    def test_failure_does_not_poison_other_tasks(self):
        with ParallelExecutor(workers=2, retries=0) as engine:
            for index in range(6):
                engine.submit(index, _square, index)
            engine.submit("bad", _fail_always, "x")
            results, errors = engine.drain()
        assert [results[index] for index in range(6)] == [i * i for i in range(6)]
        assert [error.task_id for error in errors] == ["bad"]

    def test_worker_death_rebuilds_pool(self):
        """A hard-crashed worker surfaces as a structured error, not a
        hung pool, and the rebuilt pool finishes the remaining tasks."""
        with ParallelExecutor(workers=2, retries=1) as engine:
            engine.submit("fatal", _die, 0)
            for index in range(8):
                engine.submit(index, _square, index)
            results, errors = engine.drain()
            # The pool is functional again after the rebuild.
            engine.submit("after", _square, 9)
            results, errors = engine.drain()
        assert results["after"] == 81
        assert [results[index] for index in range(8)] == [i * i for i in range(8)]
        assert any(
            error.task_id == "fatal" and error.stage == "worker" for error in errors
        )

    def test_duplicate_task_id_rejected(self):
        with ParallelExecutor(workers=1) as engine:
            engine.submit("a", _square, 2)
            with pytest.raises(ValueError):
                engine.submit("a", _square, 3)


class TestDatasetMerge:
    def test_merge_restores_crawl_order(self, small_overlay):
        crawler = DHTCrawler(small_overlay, seed=5)
        snapshots = [crawler.crawl(crawl_id) for crawl_id in range(6)]
        # Round-robin across three "workers", like the sharded store.
        shards = [snapshots[0::3], snapshots[1::3], snapshots[2::3]]
        merged = CrawlDataset.merge(shards)
        assert [snapshot.crawl_id for snapshot in merged.snapshots] == list(range(6))
        serial = CrawlDataset(snapshots=snapshots)
        assert merged.unique_peer_ids() == serial.unique_peer_ids()
        assert merged.avg_discovered() == serial.avg_discovered()
