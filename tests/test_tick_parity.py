"""Differential parity harness: scalar vs vectorized (SoA) tick engine.

The contract under test is the strongest one the repo makes about the
struct-of-arrays engine (``repro.netsim.soa`` +
``repro.workload.VectorizedTrafficEngine``): with the same
``ScenarioConfig.seed``, a campaign run with ``engine="scalar"`` and one
run with ``engine="soa"`` are **bit-identical** — every monitor-log
record, every crawl snapshot, every figure input, the attack ground
truth and the detector scores.  The vectorized engine is allowed to
remove Python dispatch around RNG draws, never to change a draw.

These tests require numpy (the SoA engine's only dependency); on the
numpy-less CI lane they skip and the scalar engine is exercised by the
rest of the suite — which, combined with this harness passing on any
numpy host, transitively pins both engines to the same outputs.
"""

import dataclasses
import random

import pytest

np = pytest.importorskip("numpy")

from repro.content.catalog import ContentCatalog
from repro.workload import TrafficEngine, VectorizedTrafficEngine
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.hydra import HydraBooster
from repro.netsim.network import Overlay
from repro.netsim.soa import HAVE_NUMPY, resolve_engine
from repro.scenario import report
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.population import build_world
from repro.world.profiles import WorldProfile

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="installed numpy is below the supported floor"
)


def parity_config(engine: str, **overrides) -> ScenarioConfig:
    base = ScenarioConfig(
        profile=WorldProfile(online_servers=150, seed=77),
        days=2,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        seed=77,
        engine=engine,
    )
    return dataclasses.replace(base, **overrides)


def crawl_fingerprint(result):
    return [
        (
            snapshot.crawl_id,
            snapshot.started_at,
            snapshot.duration,
            snapshot.requests_sent,
            [(o.peer, o.ips, o.crawlable) for o in snapshot.observations.values()],
            snapshot.edges,
        )
        for snapshot in result.crawls.snapshots
    ]


@pytest.fixture(scope="module")
def engine_pair():
    """The same campaign under both engines."""
    return (
        run_campaign(parity_config("scalar")),
        run_campaign(parity_config("soa")),
    )


@pytest.fixture(scope="module")
def attack_pair(attack_config_factory):
    """The all-attacks detection campaign under both engines."""
    base = attack_config_factory()
    return (
        run_campaign(dataclasses.replace(base, engine="scalar")),
        run_campaign(dataclasses.replace(base, engine="soa")),
    )


@pytest.fixture(scope="module")
def observed_pair():
    """Metrics + tracing enabled: observability must not fork the engines."""
    overrides = dict(days=1, metrics=True, trace=True, trace_buffer=1 << 20)
    return (
        run_campaign(parity_config("scalar", **overrides)),
        run_campaign(parity_config("soa", **overrides)),
    )


class TestEngineResolution:
    def test_explicit_engines(self):
        assert resolve_engine("scalar") == "scalar"
        assert resolve_engine("soa") == "soa"

    def test_auto_uses_soa_with_numpy(self):
        assert resolve_engine("auto") == "soa"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("turbo")

    def test_soa_without_numpy_fails_fast(self, monkeypatch):
        import repro.netsim.soa as soa

        monkeypatch.setattr(soa, "_np", None)
        monkeypatch.setattr(soa, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError, match="requires numpy"):
            resolve_engine("soa")
        # ...while auto degrades gracefully to the scalar engine.
        assert resolve_engine("auto") == "scalar"

    def test_campaign_records_engine_kind(self, engine_pair):
        scalar, soa = engine_pair
        assert scalar.config.engine == "scalar"
        assert soa.config.engine == "soa"


class TestTrafficParity:
    """Every monitor log and derived dataset, bit for bit."""

    def test_hydra_log_bit_identical(self, engine_pair):
        scalar, soa = engine_pair
        assert len(scalar.hydra.log) == len(soa.hydra.log)
        assert list(scalar.hydra.log) == list(soa.hydra.log)

    def test_bitswap_log_bit_identical(self, engine_pair):
        scalar, soa = engine_pair
        assert list(scalar.bitswap_monitor.log) == list(soa.bitswap_monitor.log)

    def test_crawl_datasets_bit_identical(self, engine_pair):
        scalar, soa = engine_pair
        assert crawl_fingerprint(scalar) == crawl_fingerprint(soa)

    def test_provider_observations_identical(self, engine_pair):
        scalar, soa = engine_pair
        assert scalar.provider_observations == soa.provider_observations

    def test_gateway_probes_identical(self, engine_pair):
        scalar, soa = engine_pair
        assert scalar.gateway_probe_reports == soa.gateway_probe_reports

    def test_no_exec_errors(self, engine_pair):
        scalar, soa = engine_pair
        assert scalar.exec_errors == [] and soa.exec_errors == []


class TestFigureParity:
    """The paper figures derive from identical inputs — pin the outputs
    too, so a parity break anywhere upstream is caught at the headline
    numbers as well."""

    @pytest.mark.parametrize(
        "figure",
        ["fig3_report", "fig14_report", "fig15_report", "fig16_report"],
    )
    def test_figure_reports_identical(self, engine_pair, figure):
        scalar, soa = engine_pair
        build = getattr(report, figure)
        assert build(scalar) == build(soa)

    def test_crawl_stats_identical(self, engine_pair):
        scalar, soa = engine_pair
        assert report.crawl_stats_report(scalar) == report.crawl_stats_report(soa)


class TestAttackParity:
    """Adversarial scenarios ride the same engine hooks; ground truth and
    detector scores must not depend on the engine."""

    def test_attack_ground_truth_identical(self, attack_pair):
        scalar, soa = attack_pair
        assert list(scalar.attack_ground_truth) == list(soa.attack_ground_truth)

    def test_attack_summary_identical(self, attack_pair):
        scalar, soa = attack_pair
        assert scalar.attack_summary == soa.attack_summary

    def test_detection_scores_identical(self, attack_pair):
        scalar, soa = attack_pair
        assert scalar.detection == soa.detection

    def test_attacked_logs_identical(self, attack_pair):
        scalar, soa = attack_pair
        assert list(scalar.hydra.log) == list(soa.hydra.log)
        assert list(scalar.bitswap_monitor.log) == list(soa.bitswap_monitor.log)


def build_engine(vectorized: bool, seed: int = 11):
    """A bare overlay + traffic engine stack, outside the campaign driver."""
    world = build_world(WorldProfile(online_servers=120, seed=seed))
    overlay = Overlay(world, vectorized=vectorized)
    overlay.bootstrap()
    engine_cls = VectorizedTrafficEngine if vectorized else TrafficEngine
    engine = engine_cls(
        overlay,
        ContentCatalog(random.Random(seed + 1)),
        HydraBooster(num_heads=2),
        BitswapMonitor(random.Random(seed + 2)),
        None,
        random.Random(seed + 3),
    )
    engine.seed_platform_content()
    return engine


def count_batched_calls(engine):
    """Instrument ``_run_tick_batched`` so tests can prove which path ran."""
    calls = []
    original = engine._run_tick_batched

    def counting(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    engine._run_tick_batched = counting
    return calls


class TestBatchedClassifierParity:
    """Direct ``run_tick`` differentials that pin the *batched silence
    classifier* itself.  The module-level campaign fixtures run at the
    default 4 ticks/day — a busy regime where the adaptive gate picks
    scalar dispatch — so these tests drive the windowed classification
    and snapshot-rewind machinery explicitly, in both the quiet regime
    where it engages naturally and a busy regime where it is forced."""

    def run_ticks(self, engine, hours, ticks):
        step = hours * 3600.0
        for _ in range(ticks):
            scheduler = engine.overlay.scheduler
            scheduler.run_until(scheduler.clock.now + step)
            engine.run_tick(hours)

    def assert_engines_identical(self, scalar, vectorized):
        assert list(scalar.hydra.log) == list(vectorized.hydra.log)
        assert list(scalar.monitor.log) == list(vectorized.monitor.log)
        assert scalar.rng.getstate() == vectorized.rng.getstate()

    def test_quiet_regime_takes_batched_path(self):
        """Tiny ticks (36 sim-seconds) put nearly every node below one
        expected event — the gate must choose batched classification,
        and outputs must stay bit-identical to the scalar engine."""
        scalar = build_engine(vectorized=False)
        vectorized = build_engine(vectorized=True)
        calls = count_batched_calls(vectorized)
        self.run_ticks(scalar, 0.01, 60)
        self.run_ticks(vectorized, 0.01, 60)
        assert calls, "quiet regime should engage the batched classifier"
        self.assert_engines_identical(scalar, vectorized)

    def test_forced_batched_path_busy_regime(self):
        """With the gate disabled the classifier must survive the worst
        case — nearly every window holds an active node, so the
        snapshot/replay rewind runs constantly.  Still bit-identical."""
        scalar = build_engine(vectorized=False)
        vectorized = build_engine(vectorized=True)
        vectorized.MIN_SILENT_SHARE = -1.0  # instance override: always batch
        calls = count_batched_calls(vectorized)
        self.run_ticks(scalar, 6.0, 8)
        self.run_ticks(vectorized, 6.0, 8)
        assert calls, "gate disabled: every tick should take the batched path"
        self.assert_engines_identical(scalar, vectorized)

    def test_busy_regime_takes_scalar_dispatch(self):
        """Sanity check on the gate itself: at 6-hour ticks the expected
        silent share is far below the threshold, so the batched
        classifier must NOT engage (its windowed rewinds would be pure
        overhead) — and the precomputed-rate scalar dispatch must still
        match the scalar engine exactly."""
        scalar = build_engine(vectorized=False)
        vectorized = build_engine(vectorized=True)
        calls = count_batched_calls(vectorized)
        self.run_ticks(scalar, 6.0, 4)
        self.run_ticks(vectorized, 6.0, 4)
        assert not calls, "busy regime should use scalar dispatch"
        self.assert_engines_identical(scalar, vectorized)


class TestObservabilityParity:
    """Metrics and tracing are off the simulation's RNG path for both
    engines — turning them on must leave outputs bit-identical and
    produce the same (deterministic view of the) telemetry."""

    def test_logs_identical_with_observability_on(self, observed_pair):
        scalar, soa = observed_pair
        assert list(scalar.hydra.log) == list(soa.hydra.log)
        assert list(scalar.bitswap_monitor.log) == list(soa.bitswap_monitor.log)
        assert crawl_fingerprint(scalar) == crawl_fingerprint(soa)

    def test_metrics_views_identical(self, observed_pair):
        from repro.obs import deterministic_view

        scalar, soa = observed_pair
        scalar_view = {
            k: v
            for k, v in deterministic_view(scalar.metrics).items()
            if not k.startswith("exec.")  # worker scheduling timings differ
        }
        soa_view = {
            k: v
            for k, v in deterministic_view(soa.metrics).items()
            if not k.startswith("exec.")
        }
        assert scalar_view == soa_view

    def test_trace_views_identical(self, observed_pair):
        from repro.obs import deterministic_trace_view

        scalar, soa = observed_pair
        assert deterministic_trace_view(scalar.trace) == deterministic_trace_view(
            soa.trace
        )
