"""The workload spec front door: grammar, builders, shims, CLI.

The spec string is the only public way campaigns select a workload
model, so the parser is pinned hard: round-trips, coercions (``1e6`` for
the integer user count), every rejection path, and the builder contract
(``closed`` → ``None``, ``zipf`` → a driver with a seed-derived RNG).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro
from repro.workload import (
    OpenLoopDriver,
    WorkloadSpec,
    build_workload,
    describe_workload,
    parse_workload_spec,
)
from repro.world.population import NodeClass


class TestParser:
    def test_closed_default(self):
        spec = parse_workload_spec("closed")
        assert spec.model == "closed"
        assert spec.to_string() == "closed"

    def test_legacy_alias(self):
        assert parse_workload_spec("legacy").model == "closed"

    def test_bare_zipf_uses_defaults(self):
        spec = parse_workload_spec("zipf")
        assert spec == WorkloadSpec(model="zipf")

    def test_scientific_notation_users(self):
        spec = parse_workload_spec("zipf:users=1e6")
        assert spec.users == 1_000_000
        assert isinstance(spec.users, int)

    def test_full_example_spec(self):
        spec = parse_workload_spec(
            "zipf:users=1e6,s=1.10,sessions=onoff,diurnal=true"
        )
        assert (spec.users, spec.s, spec.sessions, spec.diurnal) == (
            1_000_000,
            1.10,
            "onoff",
            True,
        )

    def test_round_trip(self):
        spec = parse_workload_spec(
            "zipf:users=250000,arrivals_per_user_hour=0.004,diurnal=false,"
            "sessions=burst,mean_train=9.5"
        )
        assert parse_workload_spec(spec.to_string()) == spec

    def test_round_trip_default_zipf(self):
        spec = parse_workload_spec("zipf")
        assert parse_workload_spec(spec.to_string()) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "poisson",
            "closed:users=10",
            "zipf:users",
            "zipf:unknown_key=1",
            "zipf:users=ten",
            "zipf:users=1.5",
            "zipf:diurnal=maybe",
            "zipf:users=0",
            "zipf:sessions=always-on",
            "zipf:duration_alpha=0.9",
            "zipf:missing_prob=1.5",
            "zipf:diurnal_amplitude=1.0",
            "zipf:max_train=0",
        ],
    )
    def test_rejections(self, bad):
        with pytest.raises(ValueError):
            parse_workload_spec(bad)

    def test_class_mix_not_in_grammar(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_workload_spec("zipf:class_mix=foo")

    def test_class_mix_replace_in_code(self):
        spec = dataclasses.replace(
            WorkloadSpec(model="zipf"),
            class_mix=((NodeClass.GATEWAY, 1.0),),
        )
        driver = build_workload(spec, seed=3)
        assert driver._mix_classes == [NodeClass.GATEWAY]


class TestBuilder:
    def test_closed_builds_nothing(self):
        assert build_workload("closed", seed=1) is None
        assert build_workload(WorkloadSpec(), seed=1) is None

    def test_zipf_builds_driver(self):
        driver = build_workload("zipf:users=100", seed=5)
        assert isinstance(driver, OpenLoopDriver)
        assert driver.spec.users == 100

    def test_driver_rng_is_seed_derived(self):
        first = build_workload("zipf", seed=5).rng.random()
        again = build_workload("zipf", seed=5).rng.random()
        other = build_workload("zipf", seed=6).rng.random()
        assert first == again
        assert first != other

    def test_accepts_string_or_spec(self):
        from_string = build_workload("zipf:users=42", seed=1)
        from_spec = build_workload(parse_workload_spec("zipf:users=42"), seed=1)
        assert from_string.spec == from_spec.spec


class TestDescribe:
    def test_closed_describe(self):
        assert describe_workload("closed")["model"] == "closed"

    def test_zipf_calibration_numbers(self):
        info = describe_workload("zipf:users=1e6,arrivals_per_user_hour=0.001")
        assert info["sessions_per_hour_mean"] == pytest.approx(1000.0)
        assert info["requests_per_hour_mean"] == pytest.approx(6000.0)
        mix = info["content_mix"]
        assert mix["missing"] + mix["platform"] + mix["user"] == pytest.approx(1.0)


class TestReExports:
    def test_package_front_door(self):
        assert repro.WorkloadSpec is WorkloadSpec
        assert repro.parse_workload_spec is parse_workload_spec
        assert repro.build_workload is build_workload


class TestDeprecationShim:
    def test_legacy_module_warns_and_aliases(self):
        import repro.content.workload as legacy
        import repro.workload as current

        with pytest.warns(DeprecationWarning, match="moved to repro.workload"):
            engine_cls = legacy.TrafficEngine
        assert engine_cls is current.TrafficEngine
        with pytest.warns(DeprecationWarning):
            assert legacy.WorkloadConfig is current.WorkloadConfig
        with pytest.warns(DeprecationWarning):
            assert legacy._poisson is current._poisson

    def test_legacy_module_unknown_attribute(self):
        import repro.content.workload as legacy

        with pytest.raises(AttributeError):
            legacy.NoSuchThing

    def test_content_package_reexport_still_works(self):
        from repro.content import TrafficEngine, WorkloadConfig
        from repro.workload import engine

        assert TrafficEngine is engine.TrafficEngine
        assert WorkloadConfig is engine.WorkloadConfig


class TestCLI:
    def test_describe_text(self, capsys):
        from repro.cli import main

        assert main(["workload", "describe", "zipf:users=5e4"]) == 0
        out = capsys.readouterr().out
        assert "sessions_per_hour_mean" in out

    def test_describe_json(self, capsys):
        from repro.cli import main

        assert main(["workload", "describe", "zipf", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "zipf"

    def test_sample_json(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "workload",
                    "sample",
                    "zipf:users=3000,arrivals_per_user_hour=0.05",
                    "--hours",
                    "6",
                    "--seed",
                    "9",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["hours"] == 6
        assert payload["stats"]["open_requests"] > 0
        assert len(payload["requests_per_hour"]) == 6

    def test_sample_rejects_closed(self, capsys):
        from repro.cli import main

        assert main(["workload", "sample", "closed"]) == 2
        assert "zipf" in capsys.readouterr().err

    def test_malformed_spec_exits_2(self, capsys):
        from repro.cli import main

        assert main(["workload", "describe", "zipf:nope=1"]) == 2
        assert "unknown key" in capsys.readouterr().err

    def test_campaign_flag_validates_early(self, capsys):
        from repro.cli import main

        assert main(["campaign", "--workload", "zipf:nope=1"]) == 2
        assert "unknown key" in capsys.readouterr().err
