"""The Bitswap engine: wantlists, 1-hop discovery, block transfer."""

import random

import pytest

from repro.bitswap.engine import BitswapEngine, BlockStore
from repro.bitswap.messages import BitswapMessage, WantType, WantlistEntry
from repro.ids.cid import CID
from repro.ids.peerid import PeerID


def make_engine(seed):
    return BitswapEngine(PeerID.generate(random.Random(seed)))


class TestBlockStore:
    def test_put_get(self):
        store = BlockStore()
        cid = store.put(b"hello")
        assert cid == CID.for_data(b"hello")
        assert store.get(cid) == b"hello"
        assert store.has(cid)
        assert len(store) == 1

    def test_missing(self):
        store = BlockStore()
        assert store.get(CID.for_data(b"nothing")) is None


class TestConnectivity:
    def test_connect_is_bidirectional(self):
        a, b = make_engine(1), make_engine(2)
        a.connect(b)
        assert b.peer in a.neighbors
        assert a.peer in b.neighbors

    def test_disconnect(self):
        a, b = make_engine(3), make_engine(4)
        a.connect(b)
        a.disconnect(b)
        assert b.peer not in a.neighbors
        assert a.peer not in b.neighbors

    def test_self_connect_rejected(self):
        a = make_engine(5)
        with pytest.raises(ValueError):
            a.connect(a)


class TestDiscoveryBroadcast:
    def test_broadcast_finds_holders(self):
        a, b, c = make_engine(6), make_engine(7), make_engine(8)
        a.connect(b)
        a.connect(c)
        cid = b.store.put(b"the data")
        holders = a.broadcast_want_have(cid)
        assert holders == [b.peer]

    def test_broadcast_is_one_hop_only(self):
        """Bitswap discovery does not propagate beyond direct neighbours
        (paper §2) — a holder two hops away stays invisible."""
        a, b, c = make_engine(9), make_engine(10), make_engine(11)
        a.connect(b)
        b.connect(c)
        cid = c.store.put(b"far away")
        assert a.broadcast_want_have(cid) == []

    def test_broadcast_reaches_taps(self):
        """The Bitswap-monitor hook: every incoming message is observable."""
        a, monitor = make_engine(12), make_engine(13)
        a.connect(monitor)
        seen = []
        monitor.taps.append(seen.append)
        cid = CID.for_data(b"x")
        a.broadcast_want_have(cid)
        assert len(seen) == 1
        assert seen[0].sender == a.peer
        assert seen[0].requested_cids == (cid,)


class TestTransfer:
    def test_fetch_block_via_broadcast(self):
        a, b = make_engine(14), make_engine(15)
        a.connect(b)
        cid = b.store.put(b"payload")
        assert a.fetch_block(cid) == b"payload"
        assert a.store.has(cid)  # downloader keeps a copy (re-provide basis)

    def test_fetch_block_local_short_circuit(self):
        a = make_engine(16)
        cid = a.store.put(b"local")
        assert a.fetch_block(cid) == b"local"

    def test_fetch_from_specific_peer(self):
        a, b, c = make_engine(17), make_engine(18), make_engine(19)
        a.connect(b)
        a.connect(c)
        cid = c.store.put(b"targeted")
        assert a.fetch_block(cid, from_peer=c.peer) == b"targeted"

    def test_fetch_missing_returns_none(self):
        a, b = make_engine(20), make_engine(21)
        a.connect(b)
        assert a.fetch_block(CID.for_data(b"ghost")) is None

    def test_ledger_accounting(self):
        a, b = make_engine(22), make_engine(23)
        a.connect(b)
        cid = b.store.put(b"12345678")
        a.fetch_block(cid)
        assert a.ledgers[b.peer].bytes_received == 8
        assert a.ledgers[b.peer].blocks_received == 1
        assert b.ledgers[a.peer].bytes_sent == 8
        assert b.ledgers[a.peer].debt_ratio > 0


class TestMessageHandling:
    def test_want_have_answers_presence(self):
        a, b = make_engine(24), make_engine(25)
        cid = b.store.put(b"here")
        message = BitswapMessage(
            sender=a.peer, wantlist=(WantlistEntry(cid, WantType.HAVE),)
        )
        response = b.receive(message)
        assert response.presences[0].have

    def test_dont_have_only_when_requested(self):
        a, b = make_engine(26), make_engine(27)
        missing = CID.for_data(b"missing")
        quiet = b.receive(
            BitswapMessage(sender=a.peer, wantlist=(WantlistEntry(missing),))
        )
        assert quiet.presences == ()
        loud = b.receive(
            BitswapMessage(
                sender=a.peer,
                wantlist=(WantlistEntry(missing, send_dont_have=True),),
            )
        )
        assert loud.presences[0].have is False

    def test_cancel_entries_ignored(self):
        a, b = make_engine(28), make_engine(29)
        cid = b.store.put(b"block")
        response = b.receive(
            BitswapMessage(
                sender=a.peer,
                wantlist=(WantlistEntry(cid, WantType.BLOCK, cancel=True),),
            )
        )
        assert response.blocks == ()
