"""The §9 IPv6-adoption what-if."""

import pytest

from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile


class TestIPv6Adoption:
    def test_zero_adoption_is_the_paper_reality(self):
        world = build_world(WorldProfile(online_servers=300, seed=5, ipv6_adoption=0.0))
        ratio = len(world.nat_specs) / 300
        assert ratio == pytest.approx(world.profile.nat_client_ratio, rel=0.1)

    def test_full_adoption_removes_nat_clients(self):
        world = build_world(WorldProfile(online_servers=300, seed=5, ipv6_adoption=1.0))
        assert len(world.nat_specs) == 0

    def test_partial_adoption_moves_clients_into_the_dht(self):
        baseline = build_world(WorldProfile(online_servers=300, seed=5, ipv6_adoption=0.0))
        shifted = build_world(WorldProfile(online_servers=300, seed=5, ipv6_adoption=0.5))
        assert len(shifted.nat_specs) < 0.7 * len(baseline.nat_specs)
        extra_servers = len(shifted.server_specs) - len(baseline.server_specs)
        moved = len(baseline.nat_specs) - len(shifted.nat_specs)
        assert extra_servers == moved

    def test_adopters_are_noncloud_servers(self):
        baseline = build_world(WorldProfile(online_servers=300, seed=5, ipv6_adoption=0.0))
        shifted = build_world(WorldProfile(online_servers=300, seed=5, ipv6_adoption=0.8))
        baseline_eph = len(baseline.specs_of(NodeClass.RESIDENTIAL_EPHEMERAL))
        shifted_eph = len(shifted.specs_of(NodeClass.RESIDENTIAL_EPHEMERAL))
        assert shifted_eph > baseline_eph
        for spec in shifted.specs_of(NodeClass.RESIDENTIAL_EPHEMERAL):
            assert not spec.is_cloud_hosted

    def test_adoption_lowers_cloud_share_of_servers(self):
        """The paper's argument: removing NAT would re-decentralize the
        DHT server set."""
        baseline = build_world(WorldProfile(online_servers=400, seed=6, ipv6_adoption=0.0))
        shifted = build_world(WorldProfile(online_servers=400, seed=6, ipv6_adoption=0.7))

        def expected_cloud_share(world):
            cloud = sum(
                spec.behavior.uptime for spec in world.server_specs if spec.is_cloud_hosted
            )
            total = sum(spec.behavior.uptime for spec in world.server_specs)
            return cloud / total

        assert expected_cloud_share(shifted) < expected_cloud_share(baseline) - 0.1
