"""Additional resilience properties on synthetic graph families."""

import random

import networkx as nx
import pytest

from repro.core import resilience


class TestGraphFamilies:
    def test_scale_free_random_vs_targeted_gap(self):
        """Albert et al.'s finding, the paper's §4 framing: scale-free
        graphs shrug off random failure but crumble under targeted
        attack."""
        graph = nx.barabasi_albert_graph(400, 2, seed=1)
        random_trace = resilience.random_removal(graph, random.Random(2))
        targeted_trace = resilience.targeted_removal(graph)
        assert random_trace.share_at(0.5) > targeted_trace.share_at(0.5)
        assert targeted_trace.partition_point() < random_trace.partition_point()

    def test_dense_random_graph_is_hard_to_partition(self):
        graph = nx.gnp_random_graph(300, 0.1, seed=3)
        targeted_trace = resilience.targeted_removal(graph)
        assert targeted_trace.partition_point() > 0.5

    def test_ring_partitions_gracefully(self):
        graph = nx.cycle_graph(100)
        trace = resilience.random_removal(graph, random.Random(4), record_every=1)
        # A ring loses large chunks quickly under random removal.
        assert trace.share_at(0.3) < 0.8

    def test_empty_graph(self):
        graph = nx.Graph()
        trace = resilience.random_removal(graph, random.Random(5))
        assert trace.lcc_share == [0.0]

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node("only")
        trace = resilience.targeted_removal(graph)
        assert trace.removed_fraction[0] == 0.0
        assert trace.lcc_share[0] == 1.0

    def test_record_every_controls_resolution(self):
        graph = nx.gnp_random_graph(100, 0.2, seed=6)
        coarse = resilience.random_removal(graph, random.Random(7), record_every=50)
        fine = resilience.random_removal(graph, random.Random(7), record_every=5)
        assert len(fine.removed_fraction) > len(coarse.removed_fraction)
