"""DHT message layer: classification and envelopes."""

import random

import pytest

from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.kademlia.messages import (
    AddProviderRequest,
    FindNodeRequest,
    GetProvidersRequest,
    MessageEnvelope,
    MessageType,
    PeerInfo,
    PingRequest,
    TrafficClass,
    classify_message,
)


class TestClassification:
    def test_get_providers_is_download(self):
        assert classify_message(MessageType.GET_PROVIDERS) is TrafficClass.DOWNLOAD

    def test_add_provider_is_advertisement(self):
        assert classify_message(MessageType.ADD_PROVIDER) is TrafficClass.ADVERTISEMENT

    @pytest.mark.parametrize("mtype", [MessageType.FIND_NODE, MessageType.PING])
    def test_routing_messages_are_other(self, mtype):
        assert classify_message(mtype) is TrafficClass.OTHER


class TestEnvelope:
    def test_traffic_class_derived(self):
        rng = random.Random(1)
        envelope = MessageEnvelope(
            timestamp=1.0,
            sender=PeerID.generate(rng),
            sender_ip="1.2.3.4",
            message_type=MessageType.ADD_PROVIDER,
            target_cid=CID.generate(rng),
        )
        assert envelope.traffic_class is TrafficClass.ADVERTISEMENT

    def test_envelope_is_frozen(self):
        rng = random.Random(2)
        envelope = MessageEnvelope(
            timestamp=1.0,
            sender=PeerID.generate(rng),
            sender_ip="1.2.3.4",
            message_type=MessageType.PING,
        )
        with pytest.raises(Exception):
            envelope.timestamp = 2.0

    def test_envelope_slots_block_extra_attributes(self):
        rng = random.Random(3)
        envelope = MessageEnvelope(
            timestamp=1.0,
            sender=PeerID.generate(rng),
            sender_ip="1.2.3.4",
            message_type=MessageType.PING,
        )
        with pytest.raises(AttributeError):
            object.__setattr__(envelope, "surprise", 1)


class TestRequests:
    def test_peer_info_accepts_matching_addrs(self):
        rng = random.Random(4)
        peer = PeerID.generate(rng)
        info = PeerInfo(peer=peer, addrs=(Multiaddr.direct("1.1.1.1", 4001, peer),))
        assert info.addrs[0].peer == peer

    def test_request_shapes(self):
        rng = random.Random(5)
        cid = CID.generate(rng)
        peer = PeerID.generate(rng)
        assert FindNodeRequest(target=cid.dht_key).target == cid.dht_key
        assert GetProvidersRequest(cid=cid).cid == cid
        provider = PeerInfo(peer=peer, addrs=())
        assert AddProviderRequest(cid=cid, provider=provider).provider.peer == peer
        assert PingRequest().nonce == 0
