"""Calibration profiles and iterative proportional fitting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.world.profiles import (
    BEHAVIORS,
    EPHEMERAL_COUNTRY_SHARES,
    ORG_COUNTRY_SEED,
    PAPER,
    SNAPSHOT_COUNTRY_SHARES,
    SNAPSHOT_ORG_SHARES,
    BehaviorProfile,
    WorldProfile,
    iterative_proportional_fit,
)


class TestIPF:
    def test_fits_both_marginals(self):
        joint = iterative_proportional_fit(
            ORG_COUNTRY_SEED, SNAPSHOT_ORG_SHARES, SNAPSHOT_COUNTRY_SHARES
        )
        for org, target in SNAPSHOT_ORG_SHARES.items():
            assert sum(joint[org].values()) == pytest.approx(target, abs=1e-6)
        for country, target in SNAPSHOT_COUNTRY_SHARES.items():
            total = sum(joint[org][country] for org in joint)
            assert total == pytest.approx(target, abs=1e-6)

    def test_zero_seed_cells_stay_zero(self):
        joint = iterative_proportional_fit(
            ORG_COUNTRY_SEED, SNAPSHOT_ORG_SHARES, SNAPSHOT_COUNTRY_SHARES
        )
        # Hetzner has no Chinese presence in the seed.
        assert joint["hetzner"]["CN"] == 0.0

    def test_rejects_unsatisfiable_rows(self):
        with pytest.raises(ValueError):
            iterative_proportional_fit({"a": {}}, {"a": 0.5}, {"x": 0.5})

    def test_simple_two_by_two(self):
        joint = iterative_proportional_fit(
            {"r1": {"c1": 1, "c2": 1}, "r2": {"c1": 1, "c2": 1}},
            {"r1": 0.6, "r2": 0.4},
            {"c1": 0.7, "c2": 0.3},
        )
        assert joint["r1"]["c1"] == pytest.approx(0.42, abs=1e-6)
        assert joint["r2"]["c2"] == pytest.approx(0.12, abs=1e-6)


class TestMarginals:
    def test_org_shares_sum_to_one(self):
        assert sum(SNAPSHOT_ORG_SHARES.values()) == pytest.approx(1.0, abs=1e-6)

    def test_country_shares_sum_to_one(self):
        assert sum(SNAPSHOT_COUNTRY_SHARES.values()) == pytest.approx(1.0, abs=1e-6)

    def test_ephemeral_country_shares_sum_to_one(self):
        assert sum(EPHEMERAL_COUNTRY_SHARES.values()) == pytest.approx(1.0, abs=2e-2)

    def test_paper_country_targets_present(self):
        for country in PAPER.an_country_shares:
            assert country in SNAPSHOT_COUNTRY_SHARES


class TestBehaviors:
    def test_uptime_formula(self):
        behavior = BehaviorProfile(
            mean_session_hours=6.0, mean_gap_hours=18.0,
            ip_rotation_prob=0.0, peerid_regen_prob=0.0,
        )
        assert behavior.uptime == pytest.approx(0.25)

    def test_cloud_core_is_stable(self):
        cloud = BEHAVIORS["cloud_stable"]
        fringe = BEHAVIORS["residential_ephemeral"]
        assert cloud.uptime > 0.95
        assert fringe.uptime < 0.2
        assert fringe.ip_rotation_prob > cloud.ip_rotation_prob
        assert fringe.peerid_regen_prob > cloud.peerid_regen_prob

    def test_addr_probs_are_distributions(self):
        for name, behavior in BEHAVIORS.items():
            assert sum(behavior.extra_addr_probs) == pytest.approx(1.0, abs=1e-6), name


class TestWorldProfile:
    def test_joint_reflects_profile_marginals(self):
        profile = WorldProfile()
        joint = profile.joint_org_country()
        cloud_total = sum(
            sum(per_country.values())
            for org, per_country in joint.items()
            if org != "residential"
        )
        assert cloud_total == pytest.approx(1.0 - profile.org_shares["residential"], abs=1e-6)

    def test_scaled_preserves_everything_else(self):
        profile = WorldProfile()
        bigger = profile.scaled(10_000)
        assert bigger.online_servers == 10_000
        assert bigger.org_shares == profile.org_shares
        assert bigger.seed == profile.seed

    def test_paper_scale(self):
        assert WorldProfile.paper_scale().online_servers == 25772

    def test_paper_calibration_shares_consistent(self):
        assert PAPER.an_cloud_share + PAPER.an_noncloud_share < 1.0  # BOTH remainder
        assert PAPER.gip_cloud_share + PAPER.gip_noncloud_share == pytest.approx(1.0)
        assert PAPER.download_share + PAPER.advertisement_share + PAPER.other_share == pytest.approx(1.0)
