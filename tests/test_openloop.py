"""The open-loop workload engine: samplers, parity, default-off pins.

Three layers of guarantees, mirroring the PR 7 discipline:

* **property layer** — every sampler (Zipf inverse-CDF, Pareto
  sessions/trains, diurnal curve, bulk mirror draws) is pinned to a
  brute-force scalar reference under Hypothesis-generated inputs;
* **parity layer** — an open-loop campaign is bit-identical between the
  scalar and SoA engines, between runs, and at any worker count;
* **regression layer** — the open-loop machinery is off by default: a
  default campaign builds no driver and produces the exact same logs as
  one with ``workload_spec="closed"`` spelled out (the golden-figure
  pins in ``test_golden_figures.py`` then anchor that default to the
  paper's numbers).
"""

from __future__ import annotations

import bisect
import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.soa import HAVE_NUMPY
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.workload import (
    ZipfPopularity,
    diurnal_factor,
    duration_scale,
    pareto_duration,
    parse_workload_spec,
    rank_by_weight,
    sample_workload,
    train_size,
)
from repro.world.profiles import WorldProfile

OPENLOOP_SPEC = "zipf:users=1500,arrivals_per_user_hour=0.02"


def openloop_config(**overrides) -> ScenarioConfig:
    base = ScenarioConfig(
        profile=WorldProfile(online_servers=150, seed=77),
        days=1,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        seed=77,
        workload_spec=OPENLOOP_SPEC,
    )
    return dataclasses.replace(base, **overrides)


def log_fingerprint(result):
    """Everything a workload change could perturb, bit for bit."""
    return (
        list(result.hydra.log),
        list(result.bitswap_monitor.log),
        [
            (snapshot.crawl_id, snapshot.requests_sent, snapshot.edges)
            for snapshot in result.crawls.snapshots
        ],
    )


# ----------------------------------------------------------------------
# property layer
# ----------------------------------------------------------------------


class TestZipfPopularity:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        s=st.floats(min_value=0.2, max_value=1.6),
        u=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_sample_matches_linear_scan(self, n, s, u):
        pop = ZipfPopularity(list(range(n)), s)
        target = u * pop.total_weight
        expected = next(
            (i for i, cum in enumerate(pop._cumulative) if cum >= target), n - 1
        )
        assert pop.sample(u) == min(expected, n - 1)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="vector path requires numpy")
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=150),
        s=st.floats(min_value=0.2, max_value=1.6),
        us=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=64),
    )
    def test_vectorized_matches_scalar(self, n, s, us):
        import numpy as np

        pop = ZipfPopularity(list(range(n)), s)
        scalar = [pop.sample(u) for u in us]
        vector = pop.sample_indices(np.array(us, dtype=np.float64)).tolist()
        assert vector == scalar

    def test_empty_catalog_returns_none(self):
        pop = ZipfPopularity([], 1.0)
        assert pop.sample(0.5) is None
        assert pop.top_share(0.01) == 0.0

    def test_skew_increases_with_exponent(self):
        flat = ZipfPopularity(list(range(1000)), 0.3)
        steep = ZipfPopularity(list(range(1000)), 1.3)
        assert steep.top_share(0.01) > flat.top_share(0.01)

    def test_rank_by_weight_orders_heaviest_first_stably(self):
        @dataclasses.dataclass
        class Item:
            weight: float
            tag: int

        items = [Item(1.0, 0), Item(3.0, 1), Item(1.0, 2), Item(2.0, 3)]
        ranked = rank_by_weight(items)
        assert [item.tag for item in ranked] == [1, 3, 0, 2]


class TestSessionSamplers:
    @settings(max_examples=100, deadline=None)
    @given(
        u=st.floats(min_value=1e-9, max_value=1.0),
        scale=st.floats(min_value=1.0, max_value=600.0),
        alpha=st.floats(min_value=1.05, max_value=4.0),
    )
    def test_pareto_is_exact_inverse_cdf(self, u, scale, alpha):
        cap = 1e12
        value = pareto_duration(u, scale, alpha, cap)
        assert value == min(scale * u ** (-1.0 / alpha), cap)
        assert value >= scale * 0.999999

    def test_pareto_u_zero_hits_cap(self):
        assert pareto_duration(0.0, 10.0, 1.5, 777.0) == 777.0

    @settings(max_examples=50, deadline=None)
    @given(
        mean=st.floats(min_value=60.0, max_value=3600.0),
        alpha=st.floats(min_value=1.1, max_value=3.0),
    )
    def test_duration_scale_recovers_mean(self, mean, alpha):
        """Empirical mean of capped Pareto draws approaches the requested
        mean (the cap bites the far tail only)."""
        scale = duration_scale(mean, alpha)
        assert scale == pytest.approx(mean * (alpha - 1.0) / alpha)
        assert 0.0 < scale < mean

    def test_duration_scale_rejects_infinite_mean(self):
        with pytest.raises(ValueError, match="exceed 1"):
            duration_scale(100.0, 1.0)

    @settings(max_examples=100, deadline=None)
    @given(
        u=st.floats(min_value=0.0, max_value=1.0),
        mean=st.floats(min_value=1.0, max_value=50.0),
        alpha=st.floats(min_value=1.1, max_value=3.0),
        cap=st.integers(min_value=1, max_value=512),
    )
    def test_train_size_bounds(self, u, mean, alpha, cap):
        size = train_size(u, mean, alpha, cap)
        assert 1 <= size <= cap
        assert isinstance(size, int)

    def test_train_empirical_mean_tracks_request(self):
        rng = random.Random(42)
        draws = [train_size(rng.random(), 6.0, 1.4, 512) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(6.0, rel=0.35)


class TestDiurnal:
    @settings(max_examples=50, deadline=None)
    @given(
        amplitude=st.floats(min_value=0.0, max_value=0.95),
        peak=st.floats(min_value=0.0, max_value=24.0),
    )
    def test_daily_mean_is_one(self, amplitude, peak):
        steps = 4800
        mean = sum(
            diurnal_factor(24.0 * i / steps, amplitude, peak) for i in range(steps)
        ) / steps
        assert mean == pytest.approx(1.0, abs=1e-9)

    def test_zero_amplitude_is_flat(self):
        assert diurnal_factor(3.0, 0.0, 20.0) == 1.0

    def test_peak_and_trough(self):
        assert diurnal_factor(20.0, 0.5, 20.0) == pytest.approx(1.5)
        assert diurnal_factor(8.0, 0.5, 20.0) == pytest.approx(0.5)

    def test_period_is_24_hours(self):
        assert diurnal_factor(3.0, 0.4, 20.0) == pytest.approx(
            diurnal_factor(27.0, 0.4, 20.0)
        )


@pytest.mark.skipif(not HAVE_NUMPY, reason="MirroredRandom requires numpy")
class TestMirrorTake:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32),
        count=st.integers(min_value=0, max_value=9000),
    )
    def test_take_equals_sequential_draws(self, seed, count):
        from repro.netsim.soa import MirroredRandom

        mirrored = random.Random(seed)
        reference = random.Random(seed)
        values = MirroredRandom(mirrored).take(count)
        assert values.tolist() == [reference.random() for _ in range(count)]
        # The Python stream advanced past exactly ``count`` draws.
        assert mirrored.random() == reference.random()


# ----------------------------------------------------------------------
# standalone sampler (shapes, no overlay)
# ----------------------------------------------------------------------


class TestSampleWorkload:
    def test_shares_match_spec_targets(self):
        spec = parse_workload_spec("zipf:users=20000")
        out = sample_workload(spec, seed=7, hours=24)
        shares = out["headline_shares"]
        assert shares["missing_share"] == pytest.approx(spec.missing_prob, abs=0.02)
        assert shares["platform_share"] == pytest.approx(
            (1 - spec.missing_prob) * spec.platform_share, abs=0.04
        )
        assert shares["gateway_share"] == pytest.approx(0.55, abs=0.05)
        assert shares["top1pct_request_share"] > 0.15  # Zipf head dominance

    def test_diurnal_shapes_hourly_volume(self):
        spec = parse_workload_spec(
            "zipf:users=40000,diurnal=true,diurnal_amplitude=0.8,peak_hour=20"
        )
        out = sample_workload(spec, seed=3, hours=24)
        hourly = out["requests_per_hour"]
        peak_window = sum(hourly[18:23])
        trough_window = sum(hourly[4:9])
        assert peak_window > 1.5 * trough_window

    def test_burst_sessions_accepted(self):
        out = sample_workload(
            parse_workload_spec("zipf:users=5000,sessions=burst,diurnal=false"),
            seed=5,
            hours=6,
        )
        assert out["stats"]["open_requests"] > 0

    def test_deterministic_per_seed(self):
        spec = parse_workload_spec("zipf:users=3000")
        assert sample_workload(spec, seed=11, hours=6) == sample_workload(
            spec, seed=11, hours=6
        )


# ----------------------------------------------------------------------
# parity + regression layers (full campaigns)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def openloop_scalar():
    return run_campaign(openloop_config(engine="scalar", metrics=True))


@pytest.fixture(scope="module")
def openloop_soa():
    if not HAVE_NUMPY:
        pytest.skip("SoA engine requires numpy")
    return run_campaign(openloop_config(engine="soa", metrics=True))


class TestOpenLoopCampaign:
    def test_driver_generated_traffic(self, openloop_scalar):
        # The campaign result does not expose the engine; the gauges do.
        gauges = openloop_scalar.metrics["gauges"]
        assert gauges["workload.sessions"] > 0
        assert gauges["workload.open_requests"] > 0
        assert gauges["workload.zipf_draws_platform"] > 0
        assert gauges["workload.platform_share"] > 0.3
        assert 0.0 <= gauges["workload.top1pct_request_share"] <= 1.0
        assert any(
            name.startswith("workload.requests_class.") for name in gauges
        )
        # Closed-loop engine counters still exported alongside.
        assert gauges["workload.downloads"] >= gauges["workload.open_requests"]

    def test_scalar_soa_parity(self, openloop_scalar, openloop_soa):
        assert log_fingerprint(openloop_scalar) == log_fingerprint(openloop_soa)

    def test_run_twice_determinism(self, openloop_scalar):
        again = run_campaign(openloop_config(engine="scalar", metrics=True))
        assert log_fingerprint(openloop_scalar) == log_fingerprint(again)
        from repro.obs import deterministic_view

        first = {
            k: v
            for k, v in deterministic_view(openloop_scalar.metrics).items()
            if not k.startswith("exec.")
        }
        second = {
            k: v
            for k, v in deterministic_view(again.metrics).items()
            if not k.startswith("exec.")
        }
        assert first == second

    def test_workers_parity(self, openloop_scalar):
        parallel = run_campaign(
            openloop_config(engine="scalar", metrics=True, workers=4)
        )
        assert log_fingerprint(openloop_scalar) == log_fingerprint(parallel)


class TestClosedDefaultRegression:
    """Open-loop machinery must be invisible until asked for."""

    def test_default_spec_is_closed(self):
        assert ScenarioConfig().workload_spec == "closed"

    def test_default_matches_explicit_closed(self):
        default = run_campaign(openloop_config(workload_spec="closed"))
        explicit = run_campaign(
            openloop_config(workload_spec="legacy")  # alias normalizes to closed
        )
        assert log_fingerprint(default) == log_fingerprint(explicit)

    def test_closed_campaign_builds_no_driver(self):
        from repro.scenario.run import MeasurementCampaign

        campaign = MeasurementCampaign(openloop_config(workload_spec="closed"))
        campaign.build()
        assert campaign.engine.open_loop is None

    def test_closed_engine_stats_keys_unchanged(self):
        """The golden gauge namespace: closed-loop campaigns must export
        exactly the historical engine counters."""
        from repro.scenario.run import MeasurementCampaign

        campaign = MeasurementCampaign(openloop_config(workload_spec="closed"))
        campaign.build()
        assert set(campaign.engine.stats) == {
            "downloads",
            "publishes",
            "bitswap_hits",
            "dht_walks",
            "amplified_walks",
        }
