"""Property-based tests on core data structures and invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.ipns.records import IPNSKeyPair, IPNSRecord
from repro.kademlia.providers import ProviderRecord
from repro.kademlia.routing_table import RoutingTable
from repro.netsim.network import ProviderRegistry
from repro.netsim.oracle import KeyspaceOracle
from repro.core.pareto import pareto_curve, top_share


def peer_from_tag(tag: int) -> PeerID:
    return PeerID((tag % (2**256)).to_bytes(32, "big"))


class TestRoutingTableProperties:
    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=10_000), max_size=120),
           st.integers(min_value=1, max_value=25))
    def test_bucket_capacity_invariant(self, tags, bucket_size):
        owner = peer_from_tag(999_999_999)
        table = RoutingTable(owner, bucket_size=bucket_size)
        for tag in tags:
            table.add(peer_from_tag(tag))
        for index in table.nonempty_buckets():
            assert len(table.bucket(index)) <= bucket_size
        # The membership index agrees with the buckets.
        assert sorted(table.peers(), key=lambda p: p.digest) == sorted(
            (peer for index in table.nonempty_buckets() for peer in table.bucket(index)),
            key=lambda p: p.digest,
        )

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=40)),
                    max_size=150))
    def test_add_remove_sequences_match_reference_set(self, operations):
        owner = peer_from_tag(123_456)
        table = RoutingTable(owner, bucket_size=1000)  # capacity never binds
        reference = set()
        for is_add, tag in operations:
            peer = peer_from_tag(tag)
            if peer == owner:
                continue
            if is_add:
                table.add(peer)
                reference.add(peer)
            else:
                table.remove(peer)
                reference.discard(peer)
        assert set(table.peers()) == reference


class TestOracleProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=60)),
                    max_size=120),
           st.integers(min_value=0, max_value=2**256 - 1))
    def test_membership_and_closest_consistency(self, operations, target):
        oracle = KeyspaceOracle()
        reference = set()
        for is_add, tag in operations:
            peer = peer_from_tag(tag)
            if is_add:
                oracle.add(peer)
                reference.add(peer)
            else:
                oracle.remove(peer)
                reference.discard(peer)
        assert set(oracle.peers()) == reference
        expected = sorted(reference, key=lambda p: p.dht_key ^ target)[:5]
        assert oracle.closest(target, 5) == expected


class TestProviderRegistryProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                              st.integers(min_value=0, max_value=30),
                              st.floats(min_value=0, max_value=100)),
                    min_size=1, max_size=80),
           st.floats(min_value=0, max_value=200))
    def test_get_never_returns_expired_and_respects_cap(self, adds, now):
        registry = ProviderRegistry(ttl=50.0, max_per_cid=8)
        cids = [CID((i + 1).to_bytes(32, "big")) for i in range(6)]
        for cid_index, provider_tag, published_at in adds:
            provider = peer_from_tag(provider_tag + 1)
            record = ProviderRecord(
                cid=cids[cid_index],
                provider=provider,
                addrs=(Multiaddr.direct("1.2.3.4", 4001, provider),),
                published_at=published_at,
            )
            registry.add(record)
        for cid in cids:
            records = registry.get(cid, now)
            assert len(records) <= 8
            assert all(now - record.published_at < 50.0 for record in records)
            providers = [record.provider for record in records]
            assert len(providers) == len(set(providers))


class TestIPNSProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                              st.floats(min_value=0, max_value=1000)),
                    min_size=1, max_size=30))
    def test_supersedes_selects_max_sequence_then_time(self, versions):
        keypair = IPNSKeyPair.generate(random.Random(1))
        records = [
            IPNSRecord.create(keypair, CID.for_data(bytes([seq % 256])), seq, published_at=ts)
            for seq, ts in versions
        ]
        winner = None
        for record in records:
            if record.supersedes(winner):
                winner = record
        best = max(records, key=lambda r: (r.sequence, r.published_at))
        assert winner.sequence == best.sequence
        assert winner.published_at == best.published_at

    @settings(max_examples=20)
    @given(st.binary(min_size=1, max_size=40), st.integers(min_value=0, max_value=100))
    def test_signatures_bind_value_and_sequence(self, payload, sequence):
        keypair = IPNSKeyPair.generate(random.Random(2))
        record = IPNSRecord.create(keypair, CID.for_data(payload), sequence, published_at=0.0)
        assert record.verify(keypair)
        other_key = IPNSKeyPair.generate(random.Random(3))
        assert not record.verify(other_key)


class TestParetoProperties:
    volumes = st.dictionaries(
        st.integers(), st.floats(min_value=0.001, max_value=1e6), min_size=2, max_size=40
    )

    @settings(max_examples=40)
    @given(volumes)
    def test_curve_endpoint_matches_top_share(self, volumes):
        curve = pareto_curve(volumes, points=len(volumes))
        assert curve[-1][1] == pytest.approx(1.0)
        # The curve at the first sampled fraction equals top_share there.
        fraction, share = curve[0]
        assert share == pytest.approx(top_share(volumes, fraction), rel=1e-9)

    @settings(max_examples=40)
    @given(volumes)
    def test_concentration_dominates_uniform(self, volumes):
        """For every fraction f, the top-f share is at least f."""
        for fraction in (0.1, 0.25, 0.5, 0.9):
            assert top_share(volumes, fraction) >= fraction - 1e-9


class TestIdentifierProperties:
    @settings(max_examples=40)
    @given(st.binary(min_size=32, max_size=32))
    def test_peerid_base58_roundtrip(self, digest):
        peer = PeerID(digest)
        assert PeerID.from_base58(peer.to_base58()) == peer

    @settings(max_examples=40)
    @given(st.binary(min_size=32, max_size=32))
    def test_cid_base32_roundtrip(self, digest):
        cid = CID(digest)
        assert CID.from_base32(cid.to_base32()) == cid

    @settings(max_examples=40)
    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    def test_multiaddr_roundtrip_direct_and_circuit(self, d1, d2):
        peer, relay = PeerID(d1), PeerID(d2)
        direct = Multiaddr.direct("10.1.2.3", 4001, peer)
        assert Multiaddr.parse(str(direct)) == direct
        if peer != relay:
            circuit = Multiaddr.circuit("10.9.9.9", 4001, relay, peer)
            assert Multiaddr.parse(str(circuit)) == circuit
