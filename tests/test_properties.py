"""Property-based tests on core data structures and invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.seeds import derive_seed
from repro.ids import encoding, keys
from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.ipns.records import IPNSKeyPair, IPNSRecord
from repro.kademlia.lookup import iterative_find_node
from repro.kademlia.messages import PeerInfo
from repro.kademlia.providers import ProviderRecord
from repro.kademlia.routing_table import RoutingTable
from repro.netsim.network import ProviderRegistry
from repro.netsim.oracle import KeyspaceOracle
from repro.core.pareto import pareto_curve, top_share


def peer_from_tag(tag: int) -> PeerID:
    return PeerID((tag % (2**256)).to_bytes(32, "big"))


class TestRoutingTableProperties:
    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=10_000), max_size=120),
           st.integers(min_value=1, max_value=25))
    def test_bucket_capacity_invariant(self, tags, bucket_size):
        owner = peer_from_tag(999_999_999)
        table = RoutingTable(owner, bucket_size=bucket_size)
        for tag in tags:
            table.add(peer_from_tag(tag))
        for index in table.nonempty_buckets():
            assert len(table.bucket(index)) <= bucket_size
        # The membership index agrees with the buckets.
        assert sorted(table.peers(), key=lambda p: p.digest) == sorted(
            (peer for index in table.nonempty_buckets() for peer in table.bucket(index)),
            key=lambda p: p.digest,
        )

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=40)),
                    max_size=150))
    def test_add_remove_sequences_match_reference_set(self, operations):
        owner = peer_from_tag(123_456)
        table = RoutingTable(owner, bucket_size=1000)  # capacity never binds
        reference = set()
        for is_add, tag in operations:
            peer = peer_from_tag(tag)
            if peer == owner:
                continue
            if is_add:
                table.add(peer)
                reference.add(peer)
            else:
                table.remove(peer)
                reference.discard(peer)
        assert set(table.peers()) == reference


class TestOracleProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=60)),
                    max_size=120),
           st.integers(min_value=0, max_value=2**256 - 1))
    def test_membership_and_closest_consistency(self, operations, target):
        oracle = KeyspaceOracle()
        reference = set()
        for is_add, tag in operations:
            peer = peer_from_tag(tag)
            if is_add:
                oracle.add(peer)
                reference.add(peer)
            else:
                oracle.remove(peer)
                reference.discard(peer)
        assert set(oracle.peers()) == reference
        expected = sorted(reference, key=lambda p: p.dht_key ^ target)[:5]
        assert oracle.closest(target, 5) == expected

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=1, max_value=40), max_size=25),
           st.integers(min_value=0, max_value=2**256 - 1),
           st.integers(min_value=0, max_value=60))
    def test_closest_handles_count_beyond_population(self, tags, target, count):
        oracle = KeyspaceOracle()
        members = set()
        for tag in tags:
            peer = peer_from_tag(tag)
            oracle.add(peer)
            members.add(peer)
        result = oracle.closest(target, count)
        assert result == sorted(members, key=lambda p: p.dht_key ^ target)[:count]
        if count >= len(members):
            assert set(result) == members


class TestSelectClosestProperties:
    """``keys.select_closest`` must be bit-identical to a brute-force XOR
    sort — it backs both the oracle and ``RoutingTable.closest``."""

    @settings(max_examples=60)
    @given(st.lists(st.integers(min_value=0, max_value=2**256 - 1),
                    unique=True, max_size=80),
           st.integers(min_value=0, max_value=2**256 - 1),
           st.integers(min_value=0, max_value=100))
    def test_matches_brute_force(self, key_list, target, count):
        expected = sorted(key_list, key=lambda k: k ^ target)[:count]
        assert keys.select_closest(sorted(key_list), target, count) == expected

    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              st.integers(min_value=0, max_value=255)),
                    max_size=60),
           st.tuples(st.integers(min_value=0, max_value=7),
                     st.integers(min_value=0, max_value=255)),
           st.integers(min_value=1, max_value=30))
    def test_matches_brute_force_on_clustered_keys(self, members, target_parts, count):
        """Keys packed into a handful of aligned subtrees, target inside
        one of them: deep duplicate prefixes and range-expansion edges."""
        key_list = sorted({(high << 253) | low for high, low in members})
        target = (target_parts[0] << 253) | target_parts[1]
        expected = sorted(key_list, key=lambda k: k ^ target)[:count]
        assert keys.select_closest(key_list, target, count) == expected


class _ReferenceWalk:
    """The pre-frontier ``_Walk``: full re-sort of the known pool on every
    ``next_batch``/``closest_live`` (oracle implementation for the
    equivalence property below)."""

    def __init__(self, target_key, start, k, alpha):
        self.target_key = target_key
        self.k = k
        self.alpha = alpha
        self.known = {}
        self.queried = set()
        self.failed = set()
        self.contacted = []
        self.messages = 0
        for info in start:
            self.known.setdefault(info.peer, info)

    def candidates(self):
        pool = [info for peer, info in self.known.items() if peer not in self.failed]
        pool.sort(key=lambda info: info.peer.dht_key ^ self.target_key)
        return pool

    def next_batch(self):
        frontier = [
            info for info in self.candidates()[: self.k] if info.peer not in self.queried
        ]
        return frontier[: self.alpha]

    def absorb(self, closer_peers):
        for info in closer_peers:
            self.known.setdefault(info.peer, info)

    def closest_live(self):
        return [info for info in self.candidates() if info.peer in self.queried][: self.k]


def _reference_find_node(target_key, start, query, k, alpha, max_queries=500):
    walk = _ReferenceWalk(target_key, start, k, alpha)
    while walk.messages < max_queries:
        batch = walk.next_batch()
        if not batch:
            break
        for info in batch:
            if walk.messages >= max_queries:
                break
            walk.queried.add(info.peer)
            walk.messages += 1
            response = query(info.peer, target_key)
            if response is None:
                walk.failed.add(info.peer)
                continue
            walk.contacted.append(info.peer)
            walk.absorb(response)
    return walk


class TestLookupWalkProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=2, max_value=60),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=4))
    def test_frontier_walk_matches_full_sort_walk(self, seed, population, k, alpha):
        """On a random topology with unreachable peers, the incremental
        frontier walk traces the exact path of the full-re-sort walk:
        same closest set (in order), contacts (in order), failures and
        message count."""
        rng = random.Random(seed)
        peers = [peer_from_tag(rng.getrandbits(128) + 1) for _ in range(population)]
        infos = {peer: PeerInfo(peer=peer, addrs=()) for peer in peers}
        unreachable = {peer for peer in peers if rng.random() < 0.25}
        neighbors = {
            peer: [
                infos[other]
                for other in rng.sample(peers, rng.randint(1, min(len(peers), 12)))
            ]
            for peer in peers
        }
        target = rng.getrandbits(256)

        def query(peer, target_key):
            assert target_key == target
            if peer in unreachable:
                return None
            return neighbors[peer]

        start = [infos[peer] for peer in rng.sample(peers, min(len(peers), 3))]
        new = iterative_find_node(target, start, query, k=k, alpha=alpha)
        old = _reference_find_node(target, start, query, k=k, alpha=alpha)
        assert [info.peer for info in new.closest] == [
            info.peer for info in old.closest_live()
        ]
        assert new.contacted == old.contacted
        assert new.failed == old.failed
        assert new.messages == old.messages


class TestProviderRegistryProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                              st.integers(min_value=0, max_value=30),
                              st.floats(min_value=0, max_value=100)),
                    min_size=1, max_size=80),
           st.floats(min_value=0, max_value=200))
    def test_get_never_returns_expired_and_respects_cap(self, adds, now):
        registry = ProviderRegistry(ttl=50.0, max_per_cid=8)
        cids = [CID((i + 1).to_bytes(32, "big")) for i in range(6)]
        for cid_index, provider_tag, published_at in adds:
            provider = peer_from_tag(provider_tag + 1)
            record = ProviderRecord(
                cid=cids[cid_index],
                provider=provider,
                addrs=(Multiaddr.direct("1.2.3.4", 4001, provider),),
                published_at=published_at,
            )
            registry.add(record)
        for cid in cids:
            records = registry.get(cid, now)
            assert len(records) <= 8
            assert all(now - record.published_at < 50.0 for record in records)
            providers = [record.provider for record in records]
            assert len(providers) == len(set(providers))


class TestIPNSProperties:
    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                              st.floats(min_value=0, max_value=1000)),
                    min_size=1, max_size=30))
    def test_supersedes_selects_max_sequence_then_time(self, versions):
        keypair = IPNSKeyPair.generate(random.Random(1))
        records = [
            IPNSRecord.create(keypair, CID.for_data(bytes([seq % 256])), seq, published_at=ts)
            for seq, ts in versions
        ]
        winner = None
        for record in records:
            if record.supersedes(winner):
                winner = record
        best = max(records, key=lambda r: (r.sequence, r.published_at))
        assert winner.sequence == best.sequence
        assert winner.published_at == best.published_at

    @settings(max_examples=20)
    @given(st.binary(min_size=1, max_size=40), st.integers(min_value=0, max_value=100))
    def test_signatures_bind_value_and_sequence(self, payload, sequence):
        keypair = IPNSKeyPair.generate(random.Random(2))
        record = IPNSRecord.create(keypair, CID.for_data(payload), sequence, published_at=0.0)
        assert record.verify(keypair)
        other_key = IPNSKeyPair.generate(random.Random(3))
        assert not record.verify(other_key)


class TestParetoProperties:
    volumes = st.dictionaries(
        st.integers(), st.floats(min_value=0.001, max_value=1e6), min_size=2, max_size=40
    )

    @settings(max_examples=40)
    @given(volumes)
    def test_curve_endpoint_matches_top_share(self, volumes):
        curve = pareto_curve(volumes, points=len(volumes))
        assert curve[-1][1] == pytest.approx(1.0)
        # The curve at the first sampled fraction equals top_share there.
        fraction, share = curve[0]
        assert share == pytest.approx(top_share(volumes, fraction), rel=1e-9)

    @settings(max_examples=40)
    @given(volumes)
    def test_concentration_dominates_uniform(self, volumes):
        """For every fraction f, the top-f share is at least f."""
        for fraction in (0.1, 0.25, 0.5, 0.9):
            assert top_share(volumes, fraction) >= fraction - 1e-9


class TestIdentifierProperties:
    @settings(max_examples=40)
    @given(st.binary(min_size=32, max_size=32))
    def test_peerid_base58_roundtrip(self, digest):
        peer = PeerID(digest)
        assert PeerID.from_base58(peer.to_base58()) == peer

    @settings(max_examples=40)
    @given(st.binary(min_size=32, max_size=32))
    def test_cid_base32_roundtrip(self, digest):
        cid = CID(digest)
        assert CID.from_base32(cid.to_base32()) == cid

    @settings(max_examples=40)
    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    def test_multiaddr_roundtrip_direct_and_circuit(self, d1, d2):
        peer, relay = PeerID(d1), PeerID(d2)
        direct = Multiaddr.direct("10.1.2.3", 4001, peer)
        assert Multiaddr.parse(str(direct)) == direct
        if peer != relay:
            circuit = Multiaddr.circuit("10.9.9.9", 4001, relay, peer)
            assert Multiaddr.parse(str(circuit)) == circuit


class TestEncodingProperties:
    """Round-trip laws for the raw base58/base32 codecs."""

    @settings(max_examples=60)
    @given(st.binary(max_size=64))
    def test_base58_roundtrip(self, data):
        assert encoding.base58_decode(encoding.base58_encode(data)) == data

    @settings(max_examples=60)
    @given(st.binary(max_size=64))
    def test_base32_roundtrip(self, data):
        assert encoding.base32_decode(encoding.base32_encode(data)) == data

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=16), st.binary(max_size=16))
    def test_base58_preserves_leading_zeros(self, zeros, tail):
        data = b"\x00" * zeros + tail
        assert encoding.base58_decode(encoding.base58_encode(data)) == data

    def test_invalid_characters_rejected(self):
        for bad in ("0OIl", "not base58 at all!"):
            with pytest.raises(ValueError):
                encoding.base58_decode(bad)
        with pytest.raises(ValueError):
            encoding.base32_decode("b01189!")


KEYS = st.integers(min_value=0, max_value=keys.KEY_SPACE - 1)


class TestXorMetricProperties:
    """Metric-space axioms of the Kademlia XOR distance."""

    @settings(max_examples=60)
    @given(KEYS, KEYS, KEYS)
    def test_metric_axioms(self, a, b, c):
        assert keys.xor_distance(a, a) == 0
        assert (keys.xor_distance(a, b) == 0) == (a == b)
        assert keys.xor_distance(a, b) == keys.xor_distance(b, a)
        assert keys.xor_distance(a, c) <= (
            keys.xor_distance(a, b) + keys.xor_distance(b, c)
        )

    @settings(max_examples=60)
    @given(KEYS, KEYS)
    def test_prefix_and_bucket_consistency(self, own, other):
        prefix = keys.common_prefix_len(own, other)
        if own == other:
            assert prefix == keys.KEY_BITS
            return
        assert keys.bucket_index(own, other) == prefix
        # Bucket i holds distances in [2^(255-i), 2^(256-i)).
        distance = keys.xor_distance(own, other)
        assert 1 << (keys.KEY_BITS - prefix - 1) <= distance < (
            1 << (keys.KEY_BITS - prefix)
        )

    @settings(max_examples=40)
    @given(KEYS, st.integers(min_value=0, max_value=keys.KEY_BITS - 1),
           st.integers(min_value=0))
    def test_random_key_lands_in_requested_bucket(self, own, index, seed):
        crafted = keys.random_key_in_bucket(own, index, random.Random(seed))
        assert keys.common_prefix_len(own, crafted) == index

    @settings(max_examples=40)
    @given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1,
                    max_size=60, unique=True), st.binary(min_size=32, max_size=32))
    def test_routing_table_closest_is_true_xor_order(self, tags, target_digest):
        owner = peer_from_tag(777_777_777)
        table = RoutingTable(owner, bucket_size=10_000)
        peers = [peer_from_tag(tag) for tag in tags]
        for peer in peers:
            table.add(peer)
        target = PeerID(target_digest).dht_key
        expected = sorted(peers, key=lambda p: keys.xor_distance(p.dht_key, target))
        assert table.closest(target, 7) == expected[:7]


class TestShardMergeProperties:
    """The sharded store is indistinguishable from a single log."""

    records = st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.integers()),
        max_size=80,
    )

    @settings(max_examples=30)
    @given(records, st.integers(min_value=1, max_value=5))
    def test_scan_restores_append_order(self, entries, num_shards):
        from repro.store.backend import SqliteBackend
        from repro.store.shard import ShardedBackend

        sharded = ShardedBackend([SqliteBackend() for _ in range(num_shards)])
        appended = []
        for ts, value in entries:
            record = {"ts": ts, "value": value}
            sharded.append(record)
            appended.append(record)
        sharded.flush()
        assert list(sharded.scan()) == appended
        assert list(sharded.scan_reversed()) == appended[::-1]
        assert len(sharded) == len(appended)
        sharded.close()

    @settings(max_examples=20)
    @given(records, st.integers(min_value=1, max_value=4),
           st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100))
    def test_scan_range_matches_reference_filter(self, entries, num_shards, lo, hi):
        from repro.store.backend import SqliteBackend
        from repro.store.shard import ShardedBackend

        start, end = min(lo, hi), max(lo, hi)
        sharded = ShardedBackend([SqliteBackend() for _ in range(num_shards)])
        appended = []
        for ts, value in entries:
            record = {"ts": ts, "value": value}
            sharded.append(record)
            appended.append(record)
        sharded.flush()
        expected = [r for r in appended if start <= r["ts"] < end]
        assert list(sharded.scan_range(start, end)) == expected
        sharded.close()


class TestSeedDerivationProperties:
    components = st.lists(
        st.one_of(st.integers(), st.text(max_size=12), st.binary(max_size=12)),
        max_size=4,
    )

    @settings(max_examples=60)
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1), components)
    def test_derivation_is_a_pure_function(self, root, parts):
        seed = derive_seed(root, *parts)
        assert seed == derive_seed(root, *parts)
        assert 0 <= seed < 2**64

    @settings(max_examples=60)
    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=10_000))
    def test_distinct_tasks_get_distinct_streams(self, root, i, j):
        if i != j:
            assert derive_seed(root, "crawl", i) != derive_seed(root, "crawl", j)
