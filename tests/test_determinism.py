"""Reproducibility: identical seeds give identical campaigns."""

import dataclasses

import pytest

from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile


def tiny_config(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        profile=WorldProfile(online_servers=150, seed=seed),
        days=1,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        seed=seed,
    )


@pytest.fixture(scope="module")
def twin_campaigns():
    return run_campaign(tiny_config(77)), run_campaign(tiny_config(77))


class TestDeterminism:
    def test_crawls_identical(self, twin_campaigns):
        first, second = twin_campaigns
        assert first.crawls.avg_discovered() == second.crawls.avg_discovered()
        assert first.crawls.unique_ips() == second.crawls.unique_ips()
        snap_a = first.crawls.snapshots[0]
        snap_b = second.crawls.snapshots[0]
        assert set(snap_a.observations) == set(snap_b.observations)
        assert snap_a.edges == snap_b.edges
        assert snap_a.requests_sent == snap_b.requests_sent

    def test_crawl_rng_is_derived_per_crawl(self, twin_campaigns):
        """Crawl ``i`` draws from ``derive_seed(seed, "crawl", i)``, not a
        shared RNG stream — the invariant that makes the determinism above
        hold at any worker count (see test_parallel_determinism)."""
        from repro.core.crawler import DHTCrawler
        from repro.exec.seeds import derive_seed

        first, _ = twin_campaigns
        crawler = DHTCrawler(first.overlay, seed=123)
        for crawl_id in (0, 5):
            assert crawler.task(crawl_id).seed == derive_seed(123, "crawl", crawl_id)

    def test_logs_identical(self, twin_campaigns):
        first, second = twin_campaigns
        assert len(first.hydra.log) == len(second.hydra.log)
        assert len(first.bitswap_monitor.log) == len(second.bitswap_monitor.log)
        assert [e.sender for e in first.hydra.log[:50]] == [
            e.sender for e in second.hydra.log[:50]
        ]

    def test_provider_observations_identical(self, twin_campaigns):
        first, second = twin_campaigns
        assert [o.cid for o in first.provider_observations] == [
            o.cid for o in second.provider_observations
        ]

    def test_ens_identical(self, twin_campaigns):
        first, second = twin_campaigns
        assert [r.cid_string for r in first.ens_scrape.records] == [
            r.cid_string for r in second.ens_scrape.records
        ]

    def test_different_seed_differs(self):
        other = run_campaign(tiny_config(78))
        baseline = run_campaign(tiny_config(77))
        assert [e.sender for e in other.hydra.log[:50]] != [
            e.sender for e in baseline.hydra.log[:50]
        ]


class TestMinimalConfigurations:
    def test_one_day_campaign_completes(self):
        result = run_campaign(tiny_config(79))
        assert len(result.crawls) >= 1
        assert len(result.hydra.log) > 0

    def test_zero_warmup_supported(self):
        config = dataclasses.replace(tiny_config(80), warmup_days=0)
        result = run_campaign(config)
        assert result.crawls.snapshots[0].started_at == 0.0
