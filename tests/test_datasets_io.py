"""Dataset export/import round-trips."""

import random

import pytest

from repro.core import datasets
from repro.core.counting import CountingMethod, counts
from repro.core.crawler import CrawlDataset, DHTCrawler
from repro.core.traffic import traffic_class_shares
from repro.ids.cid import CID
from repro.ids.peerid import PeerID


@pytest.fixture(scope="module")
def crawl_dataset(small_overlay):
    dataset = CrawlDataset()
    crawler = DHTCrawler(small_overlay, rng=random.Random(55))
    dataset.add(crawler.crawl(0))
    return dataset


class TestIdRoundTrips:
    def test_peerid(self):
        peer = PeerID.generate(random.Random(1))
        assert PeerID.from_base58(peer.to_base58()) == peer

    def test_peerid_rejects_garbage(self):
        with pytest.raises(ValueError):
            PeerID.from_base58("zzz")

    def test_cid(self):
        cid = CID.generate(random.Random(2))
        assert CID.from_base32(cid.to_base32()) == cid

    def test_cid_rejects_garbage(self):
        with pytest.raises(ValueError):
            CID.from_base32("qmfoo")
        with pytest.raises(ValueError):
            CID.from_base32("babcd")


class TestCrawlExport:
    def test_csv_round_trip_preserves_counting(self, crawl_dataset, tmp_path):
        path = tmp_path / "crawls.csv"
        written = datasets.write_crawl_csv(crawl_dataset, path)
        assert written > 0
        rows = datasets.read_crawl_rows(path)
        assert len(rows) == written
        # The counting pipeline produces identical results on the import.
        original = counts(
            [datasets.CrawlRow(c, p, ip) for c, p, ip in crawl_dataset.rows()],
            lambda ip: ip.split(".")[0],
            CountingMethod.G_IP,
        )
        reloaded = counts(rows, lambda ip: ip.split(".")[0], CountingMethod.G_IP)
        assert original == reloaded

    def test_jsonl_round_trip_preserves_structure(self, crawl_dataset, tmp_path):
        path = tmp_path / "crawls.jsonl"
        datasets.write_crawl_jsonl(crawl_dataset, path)
        reloaded = datasets.read_crawl_jsonl(path)
        original = crawl_dataset.snapshots[0]
        copy = reloaded.snapshots[0]
        assert copy.num_discovered == original.num_discovered
        assert copy.num_crawlable == original.num_crawlable
        assert set(copy.edges) == set(original.edges)
        some_peer = next(iter(original.edges))
        assert set(copy.edges[some_peer]) == set(original.edges[some_peer])


class TestLogExport:
    def test_hydra_round_trip(self, smoke_campaign, tmp_path):
        path = tmp_path / "hydra.jsonl"
        sample = smoke_campaign.hydra.log[:500]
        datasets.write_hydra_jsonl(sample, path)
        reloaded = datasets.read_hydra_jsonl(path)
        assert len(reloaded) == len(sample)
        assert traffic_class_shares(reloaded) == traffic_class_shares(sample)
        assert reloaded[0].sender == sample[0].sender
        assert reloaded[0].sender_ip == sample[0].sender_ip

    def test_bitswap_round_trip(self, smoke_campaign, tmp_path):
        path = tmp_path / "bitswap.jsonl"
        sample = smoke_campaign.bitswap_monitor.log[:300]
        datasets.write_bitswap_jsonl(sample, path)
        reloaded = datasets.read_bitswap_jsonl(path)
        assert [e.cid for e in reloaded] == [e.cid for e in sample]

    def test_provider_observations_round_trip(self, smoke_campaign, tmp_path):
        path = tmp_path / "providers.jsonl"
        sample = smoke_campaign.provider_observations[:50]
        datasets.write_provider_observations_jsonl(sample, path)
        reloaded = datasets.read_provider_observations_jsonl(path)
        assert len(reloaded) == len(sample)
        for original, copy in zip(sample, reloaded):
            assert copy.cid == original.cid
            assert {r.provider for r in copy.records} == {
                r.provider for r in original.records
            }
            assert {r.provider for r in copy.reachable} == {
                r.provider for r in original.reachable
            }
            # Circuit addresses survive the multiaddr round trip.
            assert [a.is_circuit for r in copy.records for a in r.addrs] == [
                a.is_circuit for r in original.records for a in r.addrs
            ]


class TestCampaignExport:
    def test_export_campaign_writes_everything(self, smoke_campaign, tmp_path):
        counts_by_artifact = datasets.export_campaign(smoke_campaign, tmp_path / "out")
        assert set(counts_by_artifact) == {
            "crawl_rows",
            "crawl_snapshots",
            "hydra_messages",
            "bitswap_messages",
            "provider_observations",
        }
        assert all(count > 0 for count in counts_by_artifact.values())
        assert (tmp_path / "out" / "crawls.csv").exists()
        assert (tmp_path / "out" / "hydra.jsonl").exists()
