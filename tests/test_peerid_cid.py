"""Peer IDs and CIDs."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.ids.cid import CID, cid_for_data
from repro.ids.encoding import base58_decode
from repro.ids.keys import KEY_SPACE
from repro.ids.peerid import PeerID


class TestPeerID:
    def test_requires_32_byte_digest(self):
        with pytest.raises(ValueError):
            PeerID(b"short")

    def test_from_public_key_deterministic(self):
        key = b"k" * 32
        assert PeerID.from_public_key(key) == PeerID.from_public_key(key)

    def test_generate_unique(self, rng):
        peers = {PeerID.generate(rng) for _ in range(200)}
        assert len(peers) == 200

    def test_multihash_prefix(self):
        peer = PeerID.generate(random.Random(0))
        assert peer.multihash[:2] == b"\x12\x20"
        assert len(peer.multihash) == 34

    def test_base58_roundtrips_through_multihash(self):
        peer = PeerID.generate(random.Random(1))
        decoded = base58_decode(peer.to_base58())
        assert decoded == peer.multihash

    def test_dht_key_in_keyspace(self):
        peer = PeerID.generate(random.Random(2))
        assert 0 <= peer.dht_key < KEY_SPACE

    def test_ordering_follows_dht_key(self):
        rng = random.Random(3)
        peers = sorted(PeerID.generate(rng) for _ in range(50))
        keys = [peer.dht_key for peer in peers]
        assert keys == sorted(keys)

    def test_hashable_and_equality(self):
        a = PeerID(b"\x01" * 32)
        b = PeerID(b"\x01" * 32)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestCID:
    def test_content_addressing(self):
        assert CID.for_data(b"hello") == cid_for_data(b"hello")
        assert CID.for_data(b"hello") != CID.for_data(b"hello!")

    def test_requires_32_byte_digest(self):
        with pytest.raises(ValueError):
            CID(b"\x00" * 31)

    def test_string_form_is_cidv1_base32(self):
        cid = CID.for_data(b"data")
        text = cid.to_base32()
        assert text.startswith("b")
        assert text == text.lower()

    def test_binary_layout(self):
        cid = CID.for_data(b"data")
        assert cid.binary[0] == 0x01  # CIDv1
        assert cid.binary[1] == 0x55  # raw codec
        assert cid.binary[2:4] == b"\x12\x20"  # sha2-256 multihash header

    def test_dht_key_differs_from_peer_key_for_same_digest(self):
        digest = b"\x07" * 32
        # CID and PeerID hash different multihash framings... actually the
        # framing is identical; the *dht key* is SHA-256 of the multihash,
        # so equal digests give equal keys — assert the documented tie.
        assert CID(digest).dht_key == PeerID(digest).dht_key

    @given(st.binary(max_size=128))
    def test_deterministic(self, data):
        assert CID.for_data(data) == CID.for_data(data)

    def test_generate_unique(self, rng):
        cids = {CID.generate(rng) for _ in range(200)}
        assert len(cids) == 200

    def test_sortable(self, rng):
        cids = sorted(CID.generate(rng) for _ in range(20))
        assert [c.dht_key for c in cids] == sorted(c.dht_key for c in cids)
