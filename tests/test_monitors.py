"""The measurement instruments: Hydra, Bitswap monitor, provider fetcher."""

import random

import pytest

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageType, TrafficClass
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.hydra import HydraBooster
from repro.monitors.provider_fetcher import ProviderRecordFetcher
from repro.netsim.clock import SECONDS_PER_DAY


class TestHydra:
    def test_heads_are_distinct(self):
        hydra = HydraBooster(num_heads=20)
        assert len(set(hydra.heads)) == 20

    def test_requires_at_least_one_head(self):
        with pytest.raises(ValueError):
            HydraBooster(num_heads=0)

    def test_capture_probability_matches_paper_geometry(self):
        """§3: 20 heads, 25 000 servers, ~50 contacts per walk → ≈4 %."""
        hydra = HydraBooster(num_heads=20)
        per_message = hydra.capture_probability(25_000)
        assert per_message * 50 == pytest.approx(0.04, abs=0.001)

    def test_capture_count_mean(self):
        hydra = HydraBooster(num_heads=20)
        rng = random.Random(0)
        total = sum(hydra.capture_count(50, 2500, rng) for _ in range(2000))
        assert total / 2000 == pytest.approx(50 * 20 / 2500, rel=0.1)

    def test_capture_zero_for_empty_network(self):
        hydra = HydraBooster()
        assert hydra.capture_count(50, 0, random.Random(0)) == 0

    def test_record_classification(self):
        hydra = HydraBooster()
        rng = random.Random(1)
        sender = PeerID.generate(rng)
        cid = CID.generate(rng)
        download = hydra.record(0.0, sender, "1.2.3.4", MessageType.GET_PROVIDERS, cid)
        advert = hydra.record(1.0, sender, "1.2.3.4", MessageType.ADD_PROVIDER, cid)
        other = hydra.record(2.0, sender, "1.2.3.4", MessageType.FIND_NODE, target_key=7)
        assert download.traffic_class is TrafficClass.DOWNLOAD
        assert advert.traffic_class is TrafficClass.ADVERTISEMENT
        assert other.traffic_class is TrafficClass.OTHER
        assert len(hydra) == 3
        assert len(hydra.entries(TrafficClass.DOWNLOAD)) == 1

    def test_record_derives_target_key_from_cid(self):
        hydra = HydraBooster()
        rng = random.Random(2)
        cid = CID.generate(rng)
        entry = hydra.record(0.0, PeerID.generate(rng), "1.1.1.1", MessageType.GET_PROVIDERS, cid)
        assert entry.target_key == cid.dht_key

    def test_cache_lookup_hit_then_miss_after_ttl(self):
        hydra = HydraBooster(cache_ttl=100.0)
        cid = CID.generate(random.Random(3))
        assert not hydra.cache_lookup(cid, now=0.0)   # miss, primes cache
        assert hydra.cache_lookup(cid, now=50.0)      # hit
        assert not hydra.cache_lookup(cid, now=200.0)  # expired


class TestBitswapMonitor:
    def test_connection_decision_is_persistent(self, small_overlay):
        monitor = BitswapMonitor(random.Random(4))
        node = small_overlay.online_servers()[0]
        first = monitor.is_connected(node)
        assert all(monitor.is_connected(node) == first for _ in range(5))

    def test_observe_logs_only_connected(self, small_overlay):
        monitor = BitswapMonitor(random.Random(5))
        cid = CID.generate(random.Random(6))
        logged = 0
        for node in small_overlay.online_servers()[:60]:
            if monitor.observe_broadcast(0.0, node, cid):
                logged += 1
        assert 0 < logged < 60  # connected to many, not all

    def test_daily_sampled_cids_dedupes(self, small_overlay):
        monitor = BitswapMonitor(random.Random(7))
        monitor._connected_specs = {}  # force re-decisions
        node = next(
            n for n in small_overlay.online_servers() if monitor.is_connected(n)
        )
        rng = random.Random(8)
        cids = [CID.generate(rng) for _ in range(10)]
        for cid in cids:
            monitor.observe_broadcast(100.0, node, cid)
            monitor.observe_broadcast(200.0, node, cid)  # duplicate request
        day0 = monitor.daily_sampled_cids(0, sample_size=100)
        assert sorted(day0, key=lambda c: c.digest) == sorted(cids, key=lambda c: c.digest)
        sampled = monitor.daily_sampled_cids(0, sample_size=4)
        assert len(sampled) == 4

    def test_windows(self, small_overlay):
        monitor = BitswapMonitor(random.Random(9))
        node = next(
            n for n in small_overlay.online_servers() if monitor.is_connected(n)
        )
        early = CID.generate(random.Random(10))
        late = CID.generate(random.Random(11))
        monitor.observe_broadcast(10.0, node, early)
        monitor.observe_broadcast(SECONDS_PER_DAY + 10.0, node, late)
        assert monitor.cids_on_day(0) == {early}
        assert monitor.cids_in_window(SECONDS_PER_DAY, 2 * SECONDS_PER_DAY) == {late}


class TestProviderFetcher:
    def test_fetch_collects_and_verifies(self, small_overlay):
        overlay = small_overlay
        rng = random.Random(12)
        cid = CID.generate(rng)
        publishers = [n for n in overlay.online_servers() if n.reachable][:5]
        for node in publishers:
            overlay.publish_provider_record(node, cid)
        fetcher = ProviderRecordFetcher(overlay, rng=random.Random(13), timeout=1e9)
        observation = fetcher.fetch(cid)
        found = {record.provider for record in observation.records}
        assert found == {node.peer for node in publishers}
        assert set(observation.reachable) <= set(observation.records)
        assert observation.walk_messages > 0
        assert fetcher.observations == [observation]

    def test_fetch_unprovided_cid(self, small_overlay):
        fetcher = ProviderRecordFetcher(small_overlay, rng=random.Random(14), timeout=1e9)
        observation = fetcher.fetch(CID.generate(random.Random(15)))
        assert observation.records == ()
        assert observation.resolvers_queried > 0

    def test_unreachable_providers_filtered(self, small_overlay):
        overlay = small_overlay
        rng = random.Random(16)
        cid = CID.generate(rng)
        unreachable = next(n for n in overlay.online_servers() if not n.reachable)
        overlay.publish_provider_record(unreachable, cid)
        fetcher = ProviderRecordFetcher(overlay, rng=random.Random(17), timeout=1e9)
        observation = fetcher.fetch(cid)
        assert any(r.provider == unreachable.peer for r in observation.records)
        assert all(r.provider != unreachable.peer for r in observation.reachable)
