"""ENS seeding: target mix across hosting categories."""

import random

import pytest

from repro.content.catalog import ContentCatalog, ContentItem
from repro.ens.seeding import ENSSeedConfig, seed_ens_world
from repro.ens.scraper import ENSContenthashScraper
from repro.ids.cid import CID


@pytest.fixture(scope="module")
def seeded():
    rng = random.Random(31)
    catalog = ContentCatalog(random.Random(32))
    platform_items = catalog.mint_platform_set("web3.storage", 40)
    user_items = [catalog.mint_user_item(0, publisher=index) for index in range(40)]
    persistent = [
        catalog.add(
            ContentItem(CID.generate(rng), publisher=1000 + index, created_day=0, lifetime_days=99)
        )
        for index in range(40)
    ]
    config = ENSSeedConfig(num_names=300, update_prob=0.0)
    world = seed_ens_world(catalog, config, random.Random(33), persistent_items=persistent)
    return catalog, platform_items, user_items, persistent, world, config


class TestTargetMix:
    def test_share_of_each_category(self, seeded):
        catalog, platform_items, user_items, persistent, world, config = seeded
        platform_cids = {item.cid.to_base32() for item in platform_items}
        user_cids = {item.cid.to_base32() for item in user_items}
        persistent_cids = {item.cid.to_base32() for item in persistent}
        scraped = ENSContenthashScraper(
            world.chain, [r.address for r in world.resolvers]
        ).scrape()
        categories = {"platform": 0, "persistent": 0, "ephemeral": 0, "dead": 0}
        for record in scraped.records:
            if record.cid_string in platform_cids:
                categories["platform"] += 1
            elif record.cid_string in persistent_cids:
                categories["persistent"] += 1
            elif record.cid_string in user_cids:
                categories["ephemeral"] += 1
            else:
                categories["dead"] += 1
        total = sum(categories.values())
        assert categories["platform"] / total == pytest.approx(
            config.share_platform_content, abs=0.08
        )
        assert categories["persistent"] / total == pytest.approx(
            config.share_persistent_user, abs=0.08
        )
        assert categories["dead"] / total == pytest.approx(
            config.share_dead_cids + 0.0, abs=0.06
        )

    def test_every_record_decodes(self, seeded):
        *_, world, _ = seeded
        scraped = ENSContenthashScraper(
            world.chain, [r.address for r in world.resolvers]
        ).scrape()
        assert len(scraped.cids()) == len(scraped.records)

    def test_swarm_names_excluded(self, seeded):
        *_, world, _ = seeded
        scraped = ENSContenthashScraper(
            world.chain, [r.address for r in world.resolvers]
        ).scrape()
        names = {label for label, _ in world.names}
        assert all(not label.startswith("swarmsite") for label in names)
        assert scraped.contenthash_events > len(scraped.records)  # swarm filtered
