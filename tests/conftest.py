"""Shared fixtures.

The expensive artifacts (a bootstrapped overlay, a full smoke campaign)
are session-scoped: they are built once and shared read-only across the
integration tests that consume them.
"""

from __future__ import annotations

import random

import pytest

from repro.netsim.churn import ChurnProcess
from repro.netsim.network import Overlay
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.population import build_world
from repro.world.profiles import WorldProfile


@pytest.fixture()
def rng():
    return random.Random(1234)


@pytest.fixture(scope="session")
def small_world():
    """A small but fully structured world (≈300 online servers)."""
    return build_world(WorldProfile(online_servers=300, seed=7))


@pytest.fixture(scope="session")
def small_overlay(small_world):
    """A bootstrapped overlay over the small world; treat as read-only."""
    overlay = Overlay(small_world)
    overlay.bootstrap()
    return overlay


@pytest.fixture(scope="session")
def churned_overlay():
    """An overlay advanced through three days of churn (own world so the
    read-only ``small_overlay`` stays untouched)."""
    world = build_world(WorldProfile(online_servers=300, seed=11))
    overlay = Overlay(world)
    overlay.bootstrap()
    overlay.schedule_periodic_refresh()
    churn = ChurnProcess(overlay)
    churn.start()
    overlay.scheduler.run_until(3 * 86400.0)
    return overlay


@pytest.fixture(scope="session")
def smoke_campaign():
    """A complete end-to-end campaign at smoke scale (built once)."""
    return run_campaign(ScenarioConfig.smoke())


def _attack_scenario_config(
    servers: int = 250,
    workers: int = 1,
    storage: str = "memory",
    attacks=None,
) -> ScenarioConfig:
    """A small campaign with adversarial scenarios injected (defaults to
    all five packaged attacks, detectors on) — the shared base for the
    attack/detect integration tests."""
    from repro.attack import (
        BitswapFloodConfig,
        ChurnBombConfig,
        HydraAmplificationConfig,
        ProviderSpamConfig,
        SybilEclipseConfig,
    )

    if attacks is None:
        attacks = (
            SybilEclipseConfig(),
            ProviderSpamConfig(),
            BitswapFloodConfig(),
            HydraAmplificationConfig(),
            ChurnBombConfig(),
        )
    return ScenarioConfig(
        profile=WorldProfile(online_servers=servers, seed=99),
        days=2,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        seed=99,
        workers=workers,
        storage=storage,
        attacks=tuple(attacks),
        detect=True,
    )


@pytest.fixture(scope="session")
def attack_config_factory():
    """Build attack-campaign configs (for determinism/parity variants)."""
    return _attack_scenario_config


@pytest.fixture(scope="session")
def attack_campaign():
    """All five attacks over a two-day campaign, detectors scored."""
    return run_campaign(_attack_scenario_config())
