"""The Udger-like cloud database, the GeoLite-like geo database, and
reverse DNS."""

import pytest

from repro.world.clouddb import CloudIPDatabase
from repro.world.geodb import GeoIPDatabase
from repro.world.ipspace import IPAllocator, format_ip
from repro.world.rdns import ReverseDNS


@pytest.fixture()
def blocks():
    allocator = IPAllocator()
    return {
        "aws": allocator.allocate_block("amazon-aws", "US", True, 20),
        "hetzner": allocator.allocate_block("hetzner", "DE", True, 20),
        "isp": allocator.allocate_block("isp-fr", "FR", False, 20),
    }


class TestCloudDB:
    def test_lookup_by_int_and_string(self, blocks):
        db = CloudIPDatabase(blocks.values())
        ip = blocks["aws"].base + 7
        assert db.lookup(ip) == "amazon-aws"
        assert db.lookup(format_ip(ip)) == "amazon-aws"

    def test_non_cloud_blocks_absent(self, blocks):
        """Udger semantics: ISP ranges have no entry → None → non-cloud."""
        db = CloudIPDatabase(blocks.values())
        assert db.lookup(blocks["isp"].base + 1) is None
        assert not db.is_cloud(blocks["isp"].base + 1)

    def test_unknown_address(self, blocks):
        db = CloudIPDatabase(blocks.values())
        assert db.lookup(1) is None

    def test_boundaries(self, blocks):
        db = CloudIPDatabase(blocks.values())
        aws = blocks["aws"]
        assert db.lookup(aws.base) == "amazon-aws"
        assert db.lookup(aws.base + aws.size - 1) == "amazon-aws"

    def test_providers_listing(self, blocks):
        db = CloudIPDatabase(blocks.values())
        assert db.providers() == ["amazon-aws", "hetzner"]

    def test_empty_db(self):
        db = CloudIPDatabase([])
        assert len(db) == 0
        assert db.lookup("1.2.3.4") is None


class TestGeoDB:
    def test_lookup_covers_all_blocks(self, blocks):
        db = GeoIPDatabase(blocks.values())
        assert db.lookup(blocks["aws"].base) == "US"
        assert db.lookup(blocks["hetzner"].base + 3) == "DE"
        assert db.lookup(blocks["isp"].base + 9) == "FR"

    def test_unknown_address(self, blocks):
        db = GeoIPDatabase(blocks.values())
        assert db.lookup("0.0.0.1") is None

    def test_countries_listing(self, blocks):
        db = GeoIPDatabase(blocks.values())
        assert db.countries() == ["DE", "FR", "US"]


class TestReverseDNS:
    def test_block_pattern_expansion(self, blocks):
        rdns = ReverseDNS()
        rdns.register_block(blocks["aws"], "ec2-{ip}.compute.amazonaws.com")
        ip = blocks["aws"].base + 2
        hostname = rdns.lookup(ip)
        assert hostname == f"ec2-{format_ip(ip).replace('.', '-')}.compute.amazonaws.com"

    def test_exact_overrides_block(self, blocks):
        rdns = ReverseDNS()
        rdns.register_block(blocks["aws"], "ec2-{ip}.compute.amazonaws.com")
        ip = blocks["aws"].base + 2
        rdns.register_address(ip, "node-1.web3.storage")
        assert rdns.lookup(ip) == "node-1.web3.storage"

    def test_nxdomain(self, blocks):
        rdns = ReverseDNS()
        assert rdns.lookup(blocks["isp"].base) is None

    def test_string_addresses(self, blocks):
        rdns = ReverseDNS()
        rdns.register_address("10.0.0.5", "host.example.org")
        assert rdns.lookup("10.0.0.5") == "host.example.org"
