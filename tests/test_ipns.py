"""IPNS: signed mutable names over the DHT."""

import random

import pytest

from repro.ids.cid import CID
from repro.ipns.records import IPNSKeyPair, IPNSName, IPNSRecord
from repro.ipns.resolver import IPNSResolver


@pytest.fixture()
def keypair():
    return IPNSKeyPair.generate(random.Random(1))


class TestNamesAndRecords:
    def test_name_derivation_deterministic(self, keypair):
        assert keypair.name == IPNSKeyPair(keypair.secret).name

    def test_distinct_keys_distinct_names(self):
        rng = random.Random(2)
        names = {IPNSKeyPair.generate(rng).name for _ in range(50)}
        assert len(names) == 50

    def test_name_string_form(self, keypair):
        assert keypair.name.to_string().startswith("k51")

    def test_name_requires_32_bytes(self):
        with pytest.raises(ValueError):
            IPNSName(b"short")

    def test_record_signature_verifies(self, keypair):
        record = IPNSRecord.create(keypair, CID.for_data(b"v1"), 0, published_at=0.0)
        assert record.verify(keypair)

    def test_forged_record_rejected(self, keypair):
        attacker = IPNSKeyPair.generate(random.Random(3))
        record = IPNSRecord.create(attacker, CID.for_data(b"evil"), 0, published_at=0.0)
        forged = IPNSRecord(
            name=keypair.name,
            value=record.value,
            sequence=record.sequence,
            published_at=record.published_at,
            validity_seconds=record.validity_seconds,
            signature=record.signature,
        )
        assert not forged.verify(keypair)

    def test_tampered_value_rejected(self, keypair):
        record = IPNSRecord.create(keypair, CID.for_data(b"v1"), 0, published_at=0.0)
        tampered = IPNSRecord(
            name=record.name,
            value=CID.for_data(b"v2"),
            sequence=record.sequence,
            published_at=record.published_at,
            validity_seconds=record.validity_seconds,
            signature=record.signature,
        )
        assert not tampered.verify(keypair)

    def test_negative_sequence_rejected(self, keypair):
        with pytest.raises(ValueError):
            IPNSRecord.create(keypair, CID.for_data(b"x"), -1, published_at=0.0)

    def test_supersedes_rule(self, keypair):
        older = IPNSRecord.create(keypair, CID.for_data(b"a"), 1, published_at=0.0)
        newer = IPNSRecord.create(keypair, CID.for_data(b"b"), 2, published_at=0.0)
        same_seq_later = IPNSRecord.create(keypair, CID.for_data(b"c"), 1, published_at=9.0)
        assert newer.supersedes(older)
        assert not older.supersedes(newer)
        assert same_seq_later.supersedes(older)
        assert older.supersedes(None)

    def test_validity_window(self, keypair):
        record = IPNSRecord.create(
            keypair, CID.for_data(b"x"), 0, published_at=0.0, validity_seconds=100.0
        )
        assert record.is_valid_at(99.0)
        assert not record.is_valid_at(100.0)


class TestResolver:
    def test_publish_resolve_roundtrip(self, small_overlay):
        resolver = IPNSResolver(small_overlay)
        keypair = resolver.generate_keypair()
        value = CID.for_data(b"website v1")
        result = resolver.publish(keypair, value)
        assert result.stored_on > 0
        assert resolver.resolve(keypair.name) == value

    def test_republish_updates_value(self, small_overlay):
        resolver = IPNSResolver(small_overlay)
        keypair = resolver.generate_keypair()
        resolver.publish(keypair, CID.for_data(b"v1"))
        resolver.publish(keypair, CID.for_data(b"v2"))
        assert resolver.resolve(keypair.name) == CID.for_data(b"v2")
        assert resolver.resolve_record(keypair.name).sequence == 1

    def test_unknown_name_resolves_to_none(self, small_overlay):
        resolver = IPNSResolver(small_overlay)
        stranger = IPNSKeyPair.generate(random.Random(4))
        assert resolver.resolve(stranger.name) is None

    def test_store_rejects_bad_signature(self, small_overlay):
        resolver = IPNSResolver(small_overlay)
        owner = resolver.generate_keypair()
        attacker = resolver.generate_keypair()
        record = IPNSRecord.create(attacker, CID.for_data(b"evil"), 0, published_at=0.0)
        assert not resolver.store(record, owner)

    def test_stale_replay_is_ignored(self, small_overlay):
        """An attacker replaying an old (validly signed) record cannot
        roll the name back — the sequence rule protects updates."""
        resolver = IPNSResolver(small_overlay)
        keypair = resolver.generate_keypair()
        old = resolver.publish(keypair, CID.for_data(b"v1")).record
        resolver.publish(keypair, CID.for_data(b"v2"))
        assert resolver.store(old, keypair)  # accepted (valid signature) …
        assert resolver.resolve(keypair.name) == CID.for_data(b"v2")  # … but not applied

    def test_resolve_path_ipfs_and_ipns(self, small_overlay):
        resolver = IPNSResolver(small_overlay)
        keypair = resolver.generate_keypair()
        value = CID.for_data(b"page")
        resolver.publish(keypair, value)
        assert resolver.resolve_path(f"/ipns/{keypair.name.to_string()}") == value
        assert resolver.resolve_path(f"/ipfs/{value.to_base32()}") == value
        assert resolver.resolve_path("/http/nope") is None
        assert resolver.resolve_path("garbage") is None

    def test_expiry(self, small_overlay):
        resolver = IPNSResolver(small_overlay)
        keypair = resolver.generate_keypair()
        record = IPNSRecord.create(
            keypair,
            CID.for_data(b"old"),
            0,
            published_at=small_overlay.now - 1e9,
            validity_seconds=10.0,
        )
        assert resolver.store(record, keypair)
        assert resolver.resolve(keypair.name) is None
