"""The sketch substrate honours its declared accuracy contracts.

Each sketch in :mod:`repro.obs.sketch` states a bound — Space-Saving
``error <= total / capacity``, quantile rank error within ``epsilon``,
linear-counting estimates near the true cardinality — and this module
pins them against brute-force references, across distributions, merge
plans and JSON state round-trips.
"""

from __future__ import annotations

import bisect
import json
import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.sketch import (
    LinearCounter,
    QuantileSketch,
    SpaceSaving,
    WindowedCounters,
    _fraction_label,
)


# ---------------------------------------------------------------------------
# Space-Saving
# ---------------------------------------------------------------------------

keys = st.integers(min_value=0, max_value=60).map(lambda i: f"k{i}")


class TestSpaceSaving:
    def test_exact_while_under_capacity(self):
        sketch = SpaceSaving(capacity=64)
        stream = [f"k{i % 10}" for i in range(1000)]
        for key in stream:
            sketch.update(key)
        truth = Counter(stream)
        for key, count in truth.items():
            assert sketch.count(key) == count
            assert sketch.error(key) == 0
        assert sketch.total == len(stream)

    def test_top_ordering_and_top_sum(self):
        sketch = SpaceSaving(capacity=16)
        for key, amount in [("a", 5), ("b", 9), ("c", 9), ("d", 1)]:
            sketch.update(key, amount)
        top = sketch.top(3)
        assert [entry[0] for entry in top] == ["b", "c", "a"]
        assert sketch.top_sum(2) == 18

    @settings(max_examples=60, deadline=None)
    @given(stream=st.lists(keys, min_size=1, max_size=400))
    def test_error_bound_vs_brute_force(self, stream):
        """The classic Space-Saving guarantee on an over-full summary."""
        sketch = SpaceSaving(capacity=8)
        for key in stream:
            sketch.update(key)
        truth = Counter(stream)
        assert sketch.total == len(stream)
        bound = sketch.max_error
        for key, true_count in truth.items():
            estimate = sketch.count(key)
            if estimate:
                # Tracked keys: overestimate, with a per-key error bound.
                assert true_count <= estimate
                assert estimate - sketch.error(key) <= true_count
            # Every key (tracked or evicted) stays inside total/capacity.
            assert abs(estimate - true_count) <= bound + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        left=st.lists(keys, min_size=1, max_size=200),
        right=st.lists(keys, min_size=1, max_size=200),
    )
    def test_merge_keeps_error_bound(self, left, right):
        """The parallel-Space-Saving merge invariants: tracked keys stay
        overestimates inside their per-key error (itself inside
        ``total/capacity``); an evicted key's true count cannot exceed
        twice that bound."""
        a = SpaceSaving(capacity=8)
        b = SpaceSaving(capacity=8)
        for key in left:
            a.update(key)
        for key in right:
            b.update(key)
        a.merge(b)
        truth = Counter(left) + Counter(right)
        assert a.total == len(left) + len(right)
        bound = a.max_error
        for key, true_count in truth.items():
            estimate = a.count(key)
            if estimate:
                assert true_count <= estimate
                error = a.error(key)
                assert estimate - error <= true_count
                assert error <= bound + 1e-9
            else:
                assert true_count <= 2 * bound + 1e-9

    def test_merge_is_deterministic(self):
        def build(parts):
            merged = SpaceSaving(capacity=8)
            for part in parts:
                merged.merge(part)
            return merged.to_state()

        rng = random.Random(5)
        parts = []
        for _ in range(4):
            sketch = SpaceSaving(capacity=8)
            for _ in range(300):
                sketch.update(f"k{rng.randrange(40)}")
            parts.append(sketch)
        assert build(parts) == build(parts)

    def test_state_round_trips_through_json(self):
        sketch = SpaceSaving(capacity=4)
        for key in ["a", "b", "c", "d", "e", "a", "a", "e"]:
            sketch.update(key)
        state = json.loads(json.dumps(sketch.to_state()))
        restored = SpaceSaving.from_state(state)
        assert restored.to_state() == sketch.to_state()
        assert restored.top(4) == sketch.top(4)
        # The restored summary keeps evicting correctly.
        restored.update("f")
        assert restored.total == sketch.total + 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SpaceSaving(capacity=0)


# ---------------------------------------------------------------------------
# QuantileSketch
# ---------------------------------------------------------------------------


def max_rank_error(values, sketch, fractions=None) -> float:
    """Worst observed rank error of the sketch's quantile answers, as a
    fraction of the stream length (0 when the answer's true rank range
    covers the target rank)."""
    ordered = sorted(values)
    n = len(ordered)
    fractions = fractions or [i / 100 for i in range(1, 100)]
    worst = 0.0
    for fraction in fractions:
        answer = sketch.quantile(fraction)
        low = bisect.bisect_left(ordered, answer)
        high = bisect.bisect_right(ordered, answer)
        target = fraction * n
        if low <= target <= high:
            continue
        worst = max(worst, min(abs(low - target), abs(high - target)) / n)
    return worst


class TestQuantileSketch:
    @pytest.mark.parametrize(
        "name",
        ["uniform", "zipf", "sorted", "reverse_sorted", "constant"],
    )
    def test_rank_error_within_declared_epsilon(self, name):
        rng = random.Random(7)
        values = {
            "uniform": lambda: [rng.random() for _ in range(30000)],
            "zipf": lambda: [rng.paretovariate(1.1) for _ in range(30000)],
            "sorted": lambda: sorted(rng.random() for _ in range(20000)),
            "reverse_sorted": lambda: sorted(
                (rng.random() for _ in range(20000)), reverse=True
            ),
            "constant": lambda: [3.0] * 10000,
        }[name]()
        sketch = QuantileSketch(256)
        for value in values:
            sketch.update(value)
        assert len(sketch) == len(values)
        assert max_rank_error(values, sketch) <= sketch.epsilon

    def test_exact_while_uncompressed(self):
        sketch = QuantileSketch(256)
        values = list(range(100))
        for value in values:
            sketch.update(float(value))
        assert sketch.quantile(0.5) == 49.0
        assert sketch.rank(49.0) == 50
        assert sketch.cdf(99.0) == 1.0

    def test_quantiles_batch_matches_pointwise(self):
        rng = random.Random(3)
        sketch = QuantileSketch(64)
        for _ in range(5000):
            sketch.update(rng.random())
        batch = sketch.quantiles((0.5, 0.9, 0.99))
        assert set(batch) == {"p50", "p90", "p99"}
        for fraction, label in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            assert batch[label] == pytest.approx(sketch.quantile(fraction), abs=0.02)

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=600,
        )
    )
    def test_rank_error_bound_property(self, values):
        sketch = QuantileSketch(64)
        for value in values:
            sketch.update(value)
        assert max_rank_error(values, sketch) <= sketch.epsilon

    def test_merge_error_stays_within_epsilon(self):
        rng = random.Random(11)
        values = [rng.paretovariate(1.2) for _ in range(40000)]
        parts = [QuantileSketch(256) for _ in range(4)]
        for index, value in enumerate(values):
            parts[index % 4].update(value)
        merged = QuantileSketch(256)
        for part in parts:
            merged.merge(part)
        assert merged.n == len(values)
        assert max_rank_error(values, merged) <= merged.epsilon

    def test_merge_in_fixed_order_is_deterministic(self):
        """Crawl-ordered merging: the same parts folded in the same order
        always produce bit-identical state (the cross-worker contract)."""
        rng = random.Random(13)
        streams = [
            [rng.random() for _ in range(2000)] for _ in range(4)
        ]

        def build():
            parts = []
            for stream in streams:
                sketch = QuantileSketch(64)
                for value in stream:
                    sketch.update(value)
                parts.append(sketch.to_state())
            merged = QuantileSketch(64)
            for state in parts:
                merged.merge(QuantileSketch.from_state(state))
            return merged.to_state()

        assert build() == build()

    def test_update_sequence_determinism(self):
        """No RNG anywhere: same updates, same state."""
        rng_values = [random.Random(17).random() for _ in range(5000)]

        def build():
            sketch = QuantileSketch(64)
            for value in rng_values:
                sketch.update(value)
            return sketch.to_state()

        assert build() == build()

    def test_state_round_trips_through_json(self):
        sketch = QuantileSketch(64)
        for value in range(3000):
            sketch.update(float(value % 97))
        restored = QuantileSketch.from_state(json.loads(json.dumps(sketch.to_state())))
        assert restored.to_state() == sketch.to_state()
        assert restored.quantile(0.5) == sketch.quantile(0.5)

    def test_rejects_bad_fraction_and_small_k(self):
        sketch = QuantileSketch(64)
        sketch.update(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(0.0)
        with pytest.raises(ValueError):
            sketch.quantiles((1.5,))
        with pytest.raises(ValueError):
            QuantileSketch(4)

    def test_fraction_labels(self):
        assert _fraction_label(0.5) == "p50"
        assert _fraction_label(0.99) == "p99"
        assert _fraction_label(0.999) == "p99.9"


# ---------------------------------------------------------------------------
# LinearCounter
# ---------------------------------------------------------------------------


class TestLinearCounter:
    @pytest.mark.parametrize("distinct", [10, 500, 5000])
    def test_estimate_accuracy(self, distinct):
        counter = LinearCounter(1 << 15)
        for index in range(distinct):
            counter.update(f"key-{index}")
        # Duplicates never move the estimate.
        for index in range(0, distinct, 3):
            counter.update(f"key-{index}")
        assert counter.estimate() == pytest.approx(distinct, rel=0.05)
        assert not counter.saturated

    def test_merge_is_union(self):
        a = LinearCounter(1 << 12)
        b = LinearCounter(1 << 12)
        for index in range(300):
            a.update(f"key-{index}")
        for index in range(200, 500):
            b.update(f"key-{index}")
        a.merge(b)
        assert a.estimate() == pytest.approx(500, rel=0.08)

    def test_merge_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearCounter(1 << 12).merge(LinearCounter(1 << 13))

    def test_state_round_trips_through_json(self):
        counter = LinearCounter(1 << 10)
        for index in range(100):
            counter.update(f"key-{index}")
        restored = LinearCounter.from_state(json.loads(json.dumps(counter.to_state())))
        assert restored.estimate() == counter.estimate()

    def test_hashing_is_stable_not_pythonhash(self):
        """Same keys, fresh counters, identical bitmaps — BLAKE2b, so
        PYTHONHASHSEED cannot reach the estimate."""
        a, b = LinearCounter(1 << 10), LinearCounter(1 << 10)
        for index in range(64):
            a.update(f"key-{index}")
            b.update(f"key-{index}")
        assert a.to_state() == b.to_state()

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            LinearCounter(32)
        with pytest.raises(ValueError):
            LinearCounter(100)


# ---------------------------------------------------------------------------
# WindowedCounters
# ---------------------------------------------------------------------------


class TestWindowedCounters:
    def test_exact_totals_and_shares(self):
        counters = WindowedCounters(10.0)
        for timestamp, label in [(1, "a"), (5, "b"), (12, "a"), (25, "a")]:
            counters.update(float(timestamp), label)
        assert counters.total == 4
        assert counters.totals == {"a": 3, "b": 1}
        assert counters.shares() == {"a": 0.75, "b": 0.25}
        assert counters.window_shares(0) == {"a": 0.5, "b": 0.5}
        assert counters.window_shares(2) == {"a": 1.0}
        assert counters.window_shares(9) == {}
        assert counters.latest_window() == 2

    def test_merge_adds(self):
        a = WindowedCounters(10.0)
        b = WindowedCounters(10.0)
        a.update(1.0, "x")
        b.update(2.0, "x")
        b.update(15.0, "y")
        a.merge(b)
        assert a.totals == {"x": 2, "y": 1}
        assert a.windows == {0: {"x": 2}, 1: {"y": 1}}
        with pytest.raises(ValueError):
            a.merge(WindowedCounters(5.0))

    def test_state_round_trips_through_json(self):
        counters = WindowedCounters(60.0)
        for timestamp in range(0, 600, 7):
            counters.update(float(timestamp), f"label-{timestamp % 3}")
        restored = WindowedCounters.from_state(
            json.loads(json.dumps(counters.to_state()))
        )
        assert restored.totals == counters.totals
        assert restored.windows == counters.windows
        assert restored.shares() == counters.shares()

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedCounters(0.0)
