"""Blocks/chunking and the content catalog."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.content.blocks import DEFAULT_CHUNK_SIZE, chunk_data, reassemble
from repro.content.catalog import (
    ContentCatalog,
    ContentItem,
    sample_popularity_weight,
    sample_user_lifetime,
)
from repro.ids.cid import CID


class TestChunking:
    def test_single_chunk_root_is_chunk(self):
        dag, blocks = chunk_data(b"small", chunk_size=1024)
        assert len(blocks) == 1
        assert dag.root == blocks[0][0]
        assert dag.total_size == 5

    def test_multi_chunk_has_root_block(self):
        data = bytes(range(256)) * 20
        dag, blocks = chunk_data(data, chunk_size=1000)
        assert len(dag.links) == (len(data) + 999) // 1000
        assert len(blocks) == len(dag.links) + 1  # plus the root block

    def test_empty_data(self):
        dag, blocks = chunk_data(b"")
        assert dag.total_size == 0
        assert len(blocks) == 1

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_data(b"x", chunk_size=0)

    @settings(max_examples=25)
    @given(st.binary(max_size=5000), st.integers(min_value=1, max_value=700))
    def test_reassemble_roundtrip(self, data, chunk_size):
        dag, blocks = chunk_data(data, chunk_size=chunk_size)
        store = dict(blocks)
        assert reassemble(dag, store.get) == data

    def test_reassemble_missing_block_raises(self):
        dag, blocks = chunk_data(b"abcdef", chunk_size=2)
        store = dict(blocks[1:])
        with pytest.raises(KeyError):
            reassemble(dag, store.get)

    def test_default_chunk_size_matches_ipfs(self):
        assert DEFAULT_CHUNK_SIZE == 256 * 1024

    def test_deduplication(self):
        """Identical chunks share a CID — content addressing dedupes."""
        dag, blocks = chunk_data(b"AA" * 500, chunk_size=100)
        cids = [cid for cid, _ in blocks]
        assert len(set(cids)) < len(cids)


class TestLifetimes:
    def test_mostly_one_to_three_days(self, rng):
        lifetimes = [sample_user_lifetime(rng) for _ in range(3000)]
        short = sum(1 for life in lifetimes if life <= 3) / len(lifetimes)
        assert short > 0.8  # paper Fig. 9: vast majority 1-3 days

    def test_minimum_one_day(self, rng):
        assert all(sample_user_lifetime(rng) >= 1 for _ in range(500))

    def test_popularity_heavy_tailed(self, rng):
        weights = sorted(sample_popularity_weight(rng) for _ in range(2000))
        assert sum(weights[-20:]) / sum(weights) > 0.1


class TestCatalog:
    def test_alive_window(self):
        catalog = ContentCatalog(random.Random(0))
        item = catalog.add(
            ContentItem(CID.generate(random.Random(1)), "me", created_day=2, lifetime_days=3)
        )
        assert not item.alive_on(1)
        assert item.alive_on(2)
        assert item.alive_on(4)
        assert not item.alive_on(5)

    def test_sampling_respects_aliveness(self):
        catalog = ContentCatalog(random.Random(2))
        dead = catalog.add(
            ContentItem(CID.generate(random.Random(3)), "a", created_day=0, lifetime_days=1)
        )
        alive = catalog.add(
            ContentItem(CID.generate(random.Random(4)), "b", created_day=0, lifetime_days=99)
        )
        catalog.build_day_index(5)
        rng = random.Random(5)
        sampled = {catalog.sample_request(rng).cid for _ in range(50)}
        assert sampled == {alive.cid}

    def test_sampling_empty_day(self):
        catalog = ContentCatalog(random.Random(6))
        catalog.build_day_index(0)
        assert catalog.sample_request(random.Random(7)) is None

    def test_popular_items_drawn_more(self):
        catalog = ContentCatalog(random.Random(8))
        rng = random.Random(9)
        hot = catalog.add(
            ContentItem(CID.generate(rng), "a", created_day=0, lifetime_days=10, weight=100.0)
        )
        cold = catalog.add(
            ContentItem(CID.generate(rng), "b", created_day=0, lifetime_days=10, weight=1.0)
        )
        catalog.build_day_index(0)
        draws = [catalog.sample_request(rng).cid for _ in range(300)]
        assert draws.count(hot.cid) > draws.count(cold.cid) * 3

    def test_user_content_decays_platform_does_not(self):
        catalog = ContentCatalog(random.Random(10))
        rng = random.Random(11)
        old_user = catalog.add(
            ContentItem(CID.generate(rng), 123, created_day=0, lifetime_days=30, weight=10.0)
        )
        platform = catalog.add(
            ContentItem(CID.generate(rng), "web3.storage", created_day=0, lifetime_days=30, weight=10.0)
        )
        catalog.build_day_index(20)
        draws = [catalog.sample_request(rng).cid for _ in range(400)]
        assert draws.count(platform.cid) > draws.count(old_user.cid) * 2

    def test_incremental_add_keeps_index_usable(self):
        catalog = ContentCatalog(random.Random(12))
        catalog.build_day_index(0)
        item = catalog.mint_user_item(day=0, publisher=7)
        rng = random.Random(13)
        assert catalog.sample_request(rng).cid == item.cid

    def test_mint_platform_set(self):
        catalog = ContentCatalog(random.Random(14))
        items = catalog.mint_platform_set("nft.storage", 50, weight_scale=0.5)
        assert len(items) == 50
        assert all(item.publisher == "nft.storage" for item in items)
        assert catalog.platform_items("nft.storage") == items

    def test_by_cid_lookup(self):
        catalog = ContentCatalog(random.Random(15))
        item = catalog.mint_user_item(day=0, publisher=1)
        assert catalog.by_cid[item.cid] is item
