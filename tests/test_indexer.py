"""The network indexer and combined resolution (§9 discussion)."""

import random

import pytest

from repro.ids.cid import CID
from repro.indexer.resolution import (
    CombinedResolver,
    ResolutionStrategy,
    availability,
    mean_latency,
)
from repro.indexer.service import IndexerService


@pytest.fixture(scope="module")
def provided_cids(small_overlay):
    rng = random.Random(61)
    cids = []
    publishers = [n for n in small_overlay.online_servers() if n.reachable][:10]
    for index in range(10):
        cid = CID.generate(rng)
        small_overlay.publish_provider_record(publishers[index % len(publishers)], cid)
        cids.append(cid)
    return cids


class TestIndexerService:
    def test_resolves_ingested_content(self, small_overlay, provided_cids):
        indexer = IndexerService(small_overlay, coverage=1.0)
        for cid in provided_cids:
            assert indexer.resolve(cid)
        assert indexer.stats.hit_rate == 1.0

    def test_unprovided_content_misses(self, small_overlay):
        indexer = IndexerService(small_overlay, coverage=1.0)
        assert indexer.resolve(CID.generate(random.Random(62))) == []

    def test_coverage_gaps_are_persistent(self, small_overlay, provided_cids):
        indexer = IndexerService(small_overlay, coverage=0.0)
        cid = provided_cids[0]
        assert indexer.resolve(cid) == []
        assert indexer.resolve(cid) == []  # the miss is sticky, not random

    def test_blocking_censors_content(self, small_overlay, provided_cids):
        indexer = IndexerService(small_overlay, coverage=1.0)
        victim = provided_cids[0]
        indexer.block(victim)
        assert indexer.resolve(victim) == []
        assert indexer.stats.blocked == 1
        indexer.unblock(victim)
        assert indexer.resolve(victim)

    def test_rejects_bad_coverage(self, small_overlay):
        with pytest.raises(ValueError):
            IndexerService(small_overlay, coverage=1.5)


class TestCombinedResolver:
    def test_indexer_is_faster_than_dht(self, small_overlay, provided_cids):
        indexer = IndexerService(small_overlay, coverage=1.0)
        resolver = CombinedResolver(small_overlay, indexer, random.Random(63))
        via_indexer = resolver.batch(provided_cids, ResolutionStrategy.INDEXER_ONLY)
        via_dht = resolver.batch(provided_cids, ResolutionStrategy.DHT_ONLY)
        assert availability(via_indexer) == 1.0
        assert availability(via_dht) > 0.8
        assert mean_latency(via_indexer) < mean_latency(via_dht) / 5

    def test_fallback_restores_availability_under_censorship(
        self, small_overlay, provided_cids
    ):
        """The paper's §9 advice: keep the DHT as a fallback so a
        censoring indexer operator cannot make content unavailable."""
        indexer = IndexerService(small_overlay, coverage=1.0)
        for cid in provided_cids[:5]:
            indexer.block(cid)
        resolver = CombinedResolver(small_overlay, indexer, random.Random(64))
        indexer_only = resolver.batch(provided_cids, ResolutionStrategy.INDEXER_ONLY)
        with_fallback = resolver.batch(
            provided_cids, ResolutionStrategy.INDEXER_WITH_DHT_FALLBACK
        )
        assert availability(indexer_only) == pytest.approx(0.5)
        assert availability(with_fallback) > 0.9
        assert any(outcome.used_fallback for outcome in with_fallback)

    def test_fallback_unused_when_indexer_answers(self, small_overlay, provided_cids):
        indexer = IndexerService(small_overlay, coverage=1.0)
        resolver = CombinedResolver(small_overlay, indexer, random.Random(65))
        outcomes = resolver.batch(
            provided_cids, ResolutionStrategy.INDEXER_WITH_DHT_FALLBACK
        )
        assert not any(outcome.used_fallback for outcome in outcomes)
        assert mean_latency(outcomes) == pytest.approx(indexer.rtt_seconds)

    def test_empty_batch(self, small_overlay):
        indexer = IndexerService(small_overlay)
        resolver = CombinedResolver(small_overlay, indexer)
        assert availability([]) == 0.0
        assert mean_latency([]) == 0.0
