"""Additional Hydra-booster behaviours."""

import random

import pytest

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageType, TrafficClass
from repro.monitors.hydra import HydraBooster


class TestCaptureGeometry:
    def test_probability_saturates_at_one(self):
        hydra = HydraBooster(num_heads=50)
        assert hydra.capture_probability(10) == 1.0

    def test_more_heads_capture_more(self):
        rng_a, rng_b = random.Random(1), random.Random(1)
        small = HydraBooster(num_heads=5)
        large = HydraBooster(num_heads=40)
        total_small = sum(small.capture_count(50, 5000, rng_a) for _ in range(500))
        total_large = sum(large.capture_count(50, 5000, rng_b) for _ in range(500))
        assert total_large > total_small * 4

    def test_exact_binomial_branch_for_high_probability(self):
        hydra = HydraBooster(num_heads=30)
        rng = random.Random(2)
        # heads/servers = 0.3 > 0.2 triggers the exact loop; count is
        # bounded by the walk length.
        counts = [hydra.capture_count(10, 100, rng) for _ in range(200)]
        assert all(0 <= count <= 10 for count in counts)
        assert sum(counts) / len(counts) == pytest.approx(3.0, rel=0.15)


class TestLogInspection:
    def test_entries_filters_by_class(self):
        hydra = HydraBooster()
        rng = random.Random(3)
        sender = PeerID.generate(rng)
        for _ in range(4):
            hydra.record(0.0, sender, "1.1.1.1", MessageType.GET_PROVIDERS, CID.generate(rng))
        for _ in range(2):
            hydra.record(0.0, sender, "1.1.1.1", MessageType.ADD_PROVIDER, CID.generate(rng))
        assert len(hydra.entries()) == 6
        assert len(hydra.entries(TrafficClass.DOWNLOAD)) == 4
        assert len(hydra.entries(TrafficClass.ADVERTISEMENT)) == 2
        assert len(hydra.entries(TrafficClass.OTHER)) == 0

    def test_find_node_records_keep_raw_target_key(self):
        hydra = HydraBooster()
        rng = random.Random(4)
        entry = hydra.record(
            0.0, PeerID.generate(rng), "1.1.1.1", MessageType.FIND_NODE, target_key=42
        )
        assert entry.target_key == 42
        assert entry.target_cid is None
