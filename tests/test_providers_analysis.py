"""Provider classification and per-CID cloud reliance (§6)."""

import random

import pytest

from repro.core.providers_analysis import (
    ProviderClass,
    cid_cloud_reliance,
    classify_addrs,
    classify_providers,
    provider_popularity,
)
from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.kademlia.providers import ProviderRecord
from repro.monitors.provider_fetcher import ProviderObservation
from repro.world.clouddb import CloudIPDatabase
from repro.world.ipspace import IPAllocator, format_ip


@pytest.fixture(scope="module")
def env():
    rng = random.Random(99)
    allocator = IPAllocator()
    cloud = allocator.allocate_block("vultr", "US", True, 24)
    isp = allocator.allocate_block("isp-de", "DE", False, 24)
    return {
        "rng": rng,
        "db": CloudIPDatabase(allocator.blocks),
        "cloud_ip": format_ip(cloud.base + 1),
        "cloud_ip2": format_ip(cloud.base + 2),
        "isp_ip": format_ip(isp.base + 1),
    }


def record(env, cid=None, provider=None, kind="cloud", relay_ip=None):
    rng = env["rng"]
    cid = cid or CID.generate(rng)
    provider = provider or PeerID.generate(rng)
    if kind == "nat":
        relay = PeerID.generate(rng)
        addrs = (Multiaddr.circuit(relay_ip or env["cloud_ip"], 4001, relay, provider),)
    elif kind == "cloud":
        addrs = (Multiaddr.direct(env["cloud_ip"], 4001, provider),)
    elif kind == "noncloud":
        addrs = (Multiaddr.direct(env["isp_ip"], 4001, provider),)
    else:  # hybrid
        addrs = (
            Multiaddr.direct(env["cloud_ip"], 4001, provider),
            Multiaddr.direct(env["isp_ip"], 4001, provider),
        )
    return ProviderRecord(cid=cid, provider=provider, addrs=addrs, published_at=0.0)


def observation(env, records):
    return ProviderObservation(
        cid=records[0].cid if records else CID.generate(env["rng"]),
        collected_at=0.0,
        records=tuple(records),
        reachable=tuple(records),
        resolvers_queried=20,
        walk_messages=30,
    )


class TestClassification:
    def test_four_classes(self, env):
        assert classify_addrs([record(env, kind="cloud")], env["db"]) is ProviderClass.CLOUD
        assert classify_addrs([record(env, kind="noncloud")], env["db"]) is ProviderClass.NON_CLOUD
        assert classify_addrs([record(env, kind="nat")], env["db"]) is ProviderClass.NAT_ED
        assert classify_addrs([record(env, kind="hybrid")], env["db"]) is ProviderClass.HYBRID

    def test_circuit_plus_direct_is_not_nat(self, env):
        rng = env["rng"]
        provider = PeerID.generate(rng)
        relay = PeerID.generate(rng)
        records = [
            ProviderRecord(
                cid=CID.generate(rng),
                provider=provider,
                addrs=(
                    Multiaddr.circuit(env["cloud_ip"], 4001, relay, provider),
                    Multiaddr.direct(env["isp_ip"], 4001, provider),
                ),
                published_at=0.0,
            )
        ]
        assert classify_addrs(records, env["db"]) is ProviderClass.NON_CLOUD

    def test_shares_and_relays(self, env):
        records = (
            [record(env, kind="cloud") for _ in range(5)]
            + [record(env, kind="nat", relay_ip=env["cloud_ip"]) for _ in range(3)]
            + [record(env, kind="nat", relay_ip=env["isp_ip"])]
            + [record(env, kind="noncloud")]
        )
        result = classify_providers([observation(env, records)], env["db"])
        assert result.total_providers == 10
        assert result.class_shares["cloud"] == pytest.approx(0.5)
        assert result.class_shares["nat-ed"] == pytest.approx(0.4)
        # 3 of 4 NAT providers relay through the cloud.
        assert result.relay_cloud_share == pytest.approx(0.75)
        assert result.relay_provider_shares["vultr"] == pytest.approx(0.75)

    def test_reachable_only_filter(self, env):
        reachable = record(env, kind="cloud")
        unreachable = record(env, kind="noncloud")
        obs = ProviderObservation(
            cid=reachable.cid,
            collected_at=0.0,
            records=(reachable, unreachable),
            reachable=(reachable,),
            resolvers_queried=20,
            walk_messages=30,
        )
        strict = classify_providers([obs], env["db"], reachable_only=True)
        loose = classify_providers([obs], env["db"], reachable_only=False)
        assert strict.total_providers == 1
        assert loose.total_providers == 2


class TestPopularity:
    def test_appearances_counted_across_cids(self, env):
        rng = env["rng"]
        star = PeerID.generate(rng)
        observations = []
        for _ in range(10):
            records = [record(env, provider=star, kind="cloud"), record(env, kind="noncloud")]
            observations.append(observation(env, records))
        result = provider_popularity(observations, env["db"])
        # The star provider holds 10 of 20 record appearances.
        assert result.record_shares_by_class["cloud"] == pytest.approx(0.5)
        assert result.curve[-1][1] == pytest.approx(1.0)

    def test_empty(self, env):
        result = provider_popularity([], env["db"])
        assert result.top1pct_record_share == 0.0


class TestCidCloudReliance:
    def test_aggregates(self, env):
        observations = [
            observation(env, [record(env, kind="cloud")]),                      # cloud-only
            observation(env, [record(env, kind="cloud"), record(env, kind="noncloud")]),
            observation(env, [record(env, kind="noncloud")]),                   # no cloud
            observation(env, [record(env, kind="nat"), record(env, kind="cloud")]),
        ]
        result = cid_cloud_reliance(observations, env["db"])
        assert result.total_cids == 4
        assert result.at_least_one_cloud == pytest.approx(0.75)
        assert result.cloud_only == pytest.approx(0.25)
        assert result.at_least_one_noncloud == pytest.approx(0.75)

    def test_nat_counts_as_noncloud(self, env):
        """Fig. 16 note: NAT-ed providers count as non-cloud."""
        observations = [observation(env, [record(env, kind="nat")])]
        result = cid_cloud_reliance(observations, env["db"])
        assert result.at_least_one_cloud == 0.0

    def test_hybrid_counts_as_cloud(self, env):
        observations = [observation(env, [record(env, kind="hybrid")])]
        result = cid_cloud_reliance(observations, env["db"])
        assert result.cloud_only == 1.0

    def test_distribution_is_monotone(self, env):
        observations = [
            observation(env, [record(env, kind="cloud"), record(env, kind="noncloud")])
            for _ in range(5)
        ]
        result = cid_cloud_reliance(observations, env["db"])
        ys = [y for _, y in result.cloud_share_distribution]
        assert ys == sorted(ys, reverse=True)

    def test_empty_observations_skipped(self, env):
        result = cid_cloud_reliance([observation(env, [])], env["db"])
        assert result.total_cids == 0
