"""The keyspace oracle: exactness of XOR-closest queries."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ids.peerid import PeerID
from repro.netsim.oracle import KeyspaceOracle


def brute_force_closest(peers, target, count):
    return sorted(peers, key=lambda peer: peer.dht_key ^ target)[:count]


@pytest.fixture(scope="module")
def populated():
    rng = random.Random(17)
    oracle = KeyspaceOracle()
    peers = [PeerID.generate(rng) for _ in range(500)]
    for peer in peers:
        oracle.add(peer)
    return oracle, peers


class TestClosest:
    def test_matches_brute_force(self, populated):
        oracle, peers = populated
        rng = random.Random(18)
        for _ in range(50):
            target = rng.getrandbits(256)
            count = rng.randrange(1, 40)
            assert oracle.closest(target, count) == brute_force_closest(peers, target, count)

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=2**256 - 1), st.integers(min_value=1, max_value=25))
    def test_matches_brute_force_hypothesis(self, populated, target, count):
        oracle, peers = populated
        assert oracle.closest(target, count) == brute_force_closest(peers, target, count)

    def test_count_larger_than_population(self, populated):
        oracle, peers = populated
        result = oracle.closest(0, 10_000)
        assert len(result) == len(peers)

    def test_empty_oracle(self):
        assert KeyspaceOracle().closest(0, 5) == []

    def test_zero_count(self, populated):
        oracle, _ = populated
        assert oracle.closest(0, 0) == []


class TestMembership:
    def test_add_remove(self):
        rng = random.Random(19)
        oracle = KeyspaceOracle()
        peer = PeerID.generate(rng)
        oracle.add(peer)
        assert peer in oracle
        assert len(oracle) == 1
        oracle.remove(peer)
        assert peer not in oracle
        assert len(oracle) == 0

    def test_add_idempotent(self):
        rng = random.Random(20)
        oracle = KeyspaceOracle()
        peer = PeerID.generate(rng)
        oracle.add(peer)
        oracle.add(peer)
        assert len(oracle) == 1

    def test_remove_absent_is_noop(self):
        rng = random.Random(21)
        oracle = KeyspaceOracle()
        oracle.remove(PeerID.generate(rng))
        assert len(oracle) == 0

    def test_peers_sorted_by_key(self, populated):
        oracle, _ = populated
        keys = [peer.dht_key for peer in oracle.peers()]
        assert keys == sorted(keys)


class TestSampleRange:
    def test_samples_share_prefix(self, populated):
        oracle, peers = populated
        rng = random.Random(22)
        anchor = peers[0].dht_key
        for prefix_len in (1, 2, 4, 6):
            shift = 256 - prefix_len
            base = (anchor >> shift) << shift
            sample = oracle.sample_range(base, prefix_len, 10, rng)
            for peer in sample:
                assert peer.dht_key >> shift == base >> shift

    def test_whole_space(self, populated):
        oracle, peers = populated
        rng = random.Random(23)
        sample = oracle.sample_range(0, 0, 50, rng)
        assert len(sample) == 50
        assert len(set(sample)) == 50

    def test_empty_range(self, populated):
        oracle, _ = populated
        rng = random.Random(24)
        # A very deep prefix almost surely holds no peers.
        assert oracle.sample_range(123 << 8, 248, 5, rng) == []

    def test_returns_all_when_fewer_than_count(self, populated):
        oracle, peers = populated
        rng = random.Random(25)
        # Find some peer's 16-bit prefix; few peers will share it.
        anchor = peers[3].dht_key
        base = (anchor >> 240) << 240
        sample = oracle.sample_range(base, 16, 500, rng)
        expected = [p for p in peers if p.dht_key >> 240 == anchor >> 240]
        assert set(sample) == set(expected)
