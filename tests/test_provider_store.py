"""Provider-record storage with expiry."""

import random

import pytest

from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.kademlia.providers import DEFAULT_RECORD_TTL, ProviderRecord, ProviderStore


def make_record(cid=None, provider=None, published_at=0.0, circuit=False, seed=0):
    rng = random.Random(seed)
    cid = cid or CID.generate(rng)
    provider = provider or PeerID.generate(rng)
    if circuit:
        relay = PeerID.generate(rng)
        addrs = (Multiaddr.circuit("9.9.9.9", 4001, relay, provider),)
    else:
        addrs = (Multiaddr.direct("8.8.8.8", 4001, provider),)
    return ProviderRecord(cid=cid, provider=provider, addrs=addrs, published_at=published_at)


class TestProviderRecord:
    def test_is_relayed_detects_circuit_only(self):
        assert make_record(circuit=True).is_relayed
        assert not make_record(circuit=False).is_relayed

    def test_mixed_addresses_not_relayed(self):
        rng = random.Random(3)
        provider = PeerID.generate(rng)
        relay = PeerID.generate(rng)
        record = ProviderRecord(
            cid=CID.generate(rng),
            provider=provider,
            addrs=(
                Multiaddr.circuit("9.9.9.9", 4001, relay, provider),
                Multiaddr.direct("8.8.8.8", 4001, provider),
            ),
            published_at=0.0,
        )
        assert not record.is_relayed


class TestProviderStore:
    def test_add_and_get(self):
        store = ProviderStore()
        record = make_record()
        store.add(record)
        assert store.get(record.cid, now=10.0) == [record]

    def test_expiry(self):
        store = ProviderStore(ttl=100.0)
        record = make_record(published_at=0.0)
        store.add(record)
        assert store.get(record.cid, now=99.0) == [record]
        assert store.get(record.cid, now=100.0) == []
        assert record.cid not in store.cids()

    def test_reprovide_refreshes(self):
        store = ProviderStore(ttl=100.0)
        first = make_record(published_at=0.0)
        store.add(first)
        refreshed = ProviderRecord(
            cid=first.cid, provider=first.provider, addrs=first.addrs, published_at=90.0
        )
        store.add(refreshed)
        assert store.get(first.cid, now=150.0) == [refreshed]

    def test_multiple_providers_per_cid(self):
        store = ProviderStore()
        cid = CID.generate(random.Random(5))
        records = [make_record(cid=cid, seed=s) for s in range(5)]
        for record in records:
            store.add(record)
        assert len(store.get(cid, now=1.0)) == 5
        assert len(store) == 5

    def test_prune_counts_removals(self):
        store = ProviderStore(ttl=50.0)
        store.add(make_record(published_at=0.0, seed=1))
        store.add(make_record(published_at=40.0, seed=2))
        assert store.prune(now=60.0) == 1
        assert len(store) == 1

    def test_default_ttl_is_24h(self):
        assert DEFAULT_RECORD_TTL == 24 * 3600.0
