"""The observability layer: registry, spans, exporters, campaign wiring."""

import json
import time

import pytest

import repro
from repro.obs import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    deterministic_view,
    disable,
    enable,
    get_registry,
    metrics_to_records,
    read_metrics,
    records_to_snapshot,
    render_report,
    set_registry,
    use_registry,
    write_metrics,
)
from repro.obs import metrics as obs_metrics
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile


@pytest.fixture(autouse=True)
def _clean_global_registry():
    """Tests must not leak an installed registry into each other."""
    yield
    disable()


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("g", 7)
        registry.set_gauge("g", 3)
        registry.observe("h", 12)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 5}
        assert snapshot["gauges"] == {"g": 3}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["sum"] == 12

    def test_histogram_bucket_placement(self):
        histogram = Histogram(buckets=(1, 10, 100))
        for value in (0.5, 1, 5, 10, 1000):
            histogram.observe(value)
        # counts: <=1, <=10, <=100, overflow
        assert histogram.counts == [2, 2, 0, 1]
        assert histogram.min == 0.5 and histogram.max == 1000
        assert histogram.mean == pytest.approx(1016.5 / 5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10, 1))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_span_nesting_builds_phase_paths(self):
        registry = MetricsRegistry()
        with registry.span("campaign"):
            with registry.span("build"):
                pass
            with registry.span("simulate"):
                with registry.span("fetch"):
                    pass
        snapshot = registry.snapshot()
        assert set(snapshot["spans"]) == {
            "campaign",
            "campaign/build",
            "campaign/simulate",
            "campaign/simulate/fetch",
        }
        assert snapshot["spans"]["campaign"]["count"] == 1

    def test_merge_adds_counters_histograms_and_spans(self):
        first = MetricsRegistry()
        first.inc("c", 2)
        first.observe("h", 5)
        first.record_span("phase", 1.0)
        second = MetricsRegistry()
        second.inc("c", 3)
        second.observe("h", 50)
        second.record_span("phase", 0.5)
        second.set_gauge("g", 9)
        first.merge_snapshot(second.snapshot())
        snapshot = first.snapshot()
        assert snapshot["counters"] == {"c": 5}
        assert snapshot["gauges"] == {"g": 9}
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h"]["sum"] == 55
        assert snapshot["histograms"]["h"]["min"] == 5
        assert snapshot["histograms"]["h"]["max"] == 50
        assert snapshot["spans"]["phase"] == {"count": 2, "seconds": 1.5, "errors": 0}

    def test_span_records_error_on_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("phase"):
                raise RuntimeError("boom")
        with registry.span("phase"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["spans"]["phase"]["count"] == 2
        assert snapshot["spans"]["phase"]["errors"] == 1
        assert snapshot["counters"]["span.errors.RuntimeError"] == 1

    def test_merge_preserves_span_errors(self):
        first = MetricsRegistry()
        first.record_span("phase", 1.0, errors=1)
        second = MetricsRegistry()
        second.record_span("phase", 0.5, errors=2)
        first.merge_snapshot(second.snapshot())
        assert first.snapshot()["spans"]["phase"]["errors"] == 3

    def test_merge_rejects_mismatched_buckets(self):
        first = MetricsRegistry()
        first.observe("h", 5, buckets=(1, 10))
        second = MetricsRegistry()
        second.observe("h", 5, buckets=(1, 100))
        with pytest.raises(ValueError, match="bucket bounds"):
            first.merge_snapshot(second.snapshot())

    def test_merge_order_invariance(self):
        """Merging per-task snapshots in task order is associative enough:
        any grouping of the same ordered snapshots gives the same totals."""
        parts = []
        for index in range(4):
            registry = MetricsRegistry()
            registry.inc("c", index + 1)
            registry.observe("h", index * 10)
            parts.append(registry.snapshot())
        flat = MetricsRegistry()
        for part in parts:
            flat.merge_snapshot(part)
        grouped = MetricsRegistry()
        left = MetricsRegistry()
        for part in parts[:2]:
            left.merge_snapshot(part)
        right = MetricsRegistry()
        for part in parts[2:]:
            right.merge_snapshot(part)
        grouped.merge_snapshot(left.snapshot())
        grouped.merge_snapshot(right.snapshot())
        assert deterministic_view(flat.snapshot()) == deterministic_view(
            grouped.snapshot()
        )


class TestActiveRegistry:
    def test_defaults_to_null_registry(self):
        assert isinstance(get_registry(), NullRegistry)
        assert get_registry() is NULL_REGISTRY

    def test_module_helpers_hit_installed_registry(self):
        registry = enable()
        obs_metrics.inc("x")
        obs_metrics.set_gauge("g", 2)
        obs_metrics.observe("h", 1)
        with obs_metrics.span("s"):
            pass
        disable()
        obs_metrics.inc("x")  # after disable: swallowed by the null object
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"x": 1}
        assert "s" in snapshot["spans"]

    def test_use_registry_restores_previous(self):
        outer = MetricsRegistry()
        set_registry(outer)
        inner = MetricsRegistry()
        with use_registry(inner):
            obs_metrics.inc("inside")
        obs_metrics.inc("outside")
        assert inner.snapshot()["counters"] == {"inside": 1}
        assert outer.snapshot()["counters"] == {"outside": 1}

    def test_null_registry_is_noop_and_cheap(self):
        snapshot = NULL_REGISTRY.snapshot()
        NULL_REGISTRY.inc("x", 5)
        NULL_REGISTRY.observe("h", 1.0)
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.snapshot() == snapshot
        assert snapshot["counters"] == {}
        # Overhead smoke: disabled instrumentation must stay in no-op
        # territory (generous absolute bound to stay CI-proof).
        started = time.perf_counter()
        for _ in range(100_000):
            obs_metrics.inc("hot.counter")
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0


class TestDeterministicView:
    def test_strips_wall_clock_sections(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("h", 1)
        registry.observe("latency_seconds", 0.5)
        registry.record_span("phase", 1.0)
        view = deterministic_view(registry.snapshot())
        assert view["counters"] == {"c": 1}
        assert set(view["histograms"]) == {"h"}
        assert "spans" not in view and "gauges" not in view

    def test_strips_environment_dependent_counters(self):
        """Worker crashes and retries depend on host load, not the seed:
        a retried task yields identical outputs but a different retry
        count, so these counters must not break worker-count parity."""
        registry = MetricsRegistry()
        registry.inc("exec.tasks", 8)
        registry.inc("exec.retries")
        registry.inc("exec.failures")
        registry.inc("exec.pool_rebuilds")
        view = deterministic_view(registry.snapshot())
        assert view["counters"] == {"exec.tasks": 8}


class TestExport:
    def _sample_registry(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.set_gauge("g", 2)
        registry.observe("h", 42)
        registry.record_span("campaign/build", 0.25)
        return registry

    def test_record_stream_round_trip(self):
        snapshot = self._sample_registry().snapshot()
        records = metrics_to_records(snapshot)
        assert records_to_snapshot(records) == snapshot

    def test_records_to_snapshot_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown metric record kind"):
            records_to_snapshot([{"kind": "bogus", "name": "x"}])

    @pytest.mark.parametrize("suffix", [".jsonl", ".sqlite"])
    def test_file_round_trip_via_store_backends(self, tmp_path, suffix):
        snapshot = self._sample_registry().snapshot()
        path = tmp_path / f"metrics{suffix}"
        count = write_metrics(snapshot, path)
        assert count == 4
        assert read_metrics(path) == snapshot
        # Overwrites, never appends.
        write_metrics(snapshot, path)
        assert read_metrics(path) == snapshot

    def test_flat_json_round_trip(self, tmp_path):
        snapshot = self._sample_registry().snapshot()
        path = tmp_path / "metrics.json"
        write_metrics(snapshot, path)
        assert json.loads(path.read_text()) == snapshot
        assert read_metrics(path) == snapshot

    def test_write_to_backend_instance(self, tmp_path):
        from repro.store import MemoryBackend

        backend = MemoryBackend()
        snapshot = self._sample_registry().snapshot()
        write_metrics(snapshot, backend)
        assert read_metrics(backend) == snapshot

    def test_render_report_sections(self):
        report = render_report(self._sample_registry().snapshot())
        assert "phase timings" in report
        assert "counters" in report
        assert "c" in report and "3" in report
        assert "build" in report

    def test_render_report_empty_snapshot(self):
        assert render_report(MetricsRegistry().snapshot()) == "(no metrics recorded)"

    def test_render_report_error_column(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with registry.span("build"):
                raise ValueError("nope")
        report = render_report(registry.snapshot())
        assert "errors" in report
        assert "span.errors.ValueError" in report

    def test_render_report_top_limits_rows(self):
        registry = MetricsRegistry()
        for index in range(10):
            registry.inc(f"counter.{index}", index + 1)
        full = render_report(registry.snapshot())
        trimmed = render_report(registry.snapshot(), top=3)
        assert len(trimmed.splitlines()) < len(full.splitlines())
        # the busiest counters survive, the quiet ones are trimmed
        assert "counter.9" in trimmed
        assert "counter.0" not in trimmed


def _campaign_config(workers: int) -> ScenarioConfig:
    return ScenarioConfig(
        profile=WorldProfile(online_servers=120, seed=91),
        days=1,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        workers=workers,
        metrics=True,
    )


@pytest.fixture(scope="module")
def metric_campaigns():
    serial = run_campaign(_campaign_config(workers=1))
    parallel = run_campaign(_campaign_config(workers=4))
    return serial, parallel


class TestCampaignMetrics:
    def test_metrics_disabled_by_default(self):
        config = ScenarioConfig()
        assert config.metrics is False

    def test_result_carries_snapshot(self, metric_campaigns):
        serial, _ = metric_campaigns
        snapshot = serial.metrics
        assert snapshot is not None
        assert snapshot["counters"]["crawl.crawls"] == len(serial.crawls)
        assert snapshot["counters"]["exec.tasks"] == len(serial.crawls)
        assert "campaign" in snapshot["spans"]
        assert "campaign/simulate" in snapshot["spans"]
        assert snapshot["gauges"]["campaign.workers"] == 1

    def test_worker_count_metric_merge_parity(self, metric_campaigns):
        """workers=1 and workers=4 must produce identical deterministic
        metrics — the merge mirrors the sharded-log heap-merge."""
        serial, parallel = metric_campaigns
        assert deterministic_view(serial.metrics) == deterministic_view(
            parallel.metrics
        )

    def test_campaign_does_not_install_global_registry(self, metric_campaigns):
        assert get_registry() is NULL_REGISTRY

    def test_report_renders_from_campaign(self, metric_campaigns):
        serial, _ = metric_campaigns
        report = render_report(serial.metrics)
        assert "campaign" in report
        assert "crawl.crawls" in report


class TestFrontDoor:
    def test_public_surface(self):
        assert repro.MetricsRegistry is MetricsRegistry
        assert repro.render_report is render_report
        spec = repro.parse_spec("sqlite:out/run")
        assert spec.kind == "sqlite"
        backend = repro.open_store("memory")
        backend.append({"x": 1})
        assert list(backend.scan())

    def test_monitors_accept_spec_strings(self, tmp_path):
        from repro.monitors.bitswap_monitor import BitswapMonitor
        from repro.monitors.hydra import HydraBooster

        hydra = HydraBooster(num_heads=2, store="sqlite::memory:")
        assert len(hydra) == 0
        monitor = BitswapMonitor(store=f"jsonl:{tmp_path}/bitswap.jsonl")
        assert len(monitor) == 0


class TestObsCli:
    def test_obs_report_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        registry = MetricsRegistry()
        registry.inc("crawl.crawls", 7)
        registry.record_span("campaign", 1.25)
        path = tmp_path / "metrics.jsonl"
        write_metrics(registry.snapshot(), path)
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "crawl.crawls" in out
        assert "campaign" in out

    def test_obs_report_json_and_top(self, tmp_path, capsys):
        from repro.cli import main

        registry = MetricsRegistry()
        for index in range(6):
            registry.inc(f"counter.{index}", index + 1)
        path = tmp_path / "metrics.jsonl"
        write_metrics(registry.snapshot(), path)
        assert main(["obs", "report", str(path), "--format", "json", "--top", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counters"]) == {"counter.4", "counter.5"}

    def test_obs_report_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err
