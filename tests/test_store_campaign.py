"""End-to-end: a campaign with disk-backed monitor logs is equivalent
to the in-memory default."""

import pytest

from repro.core import datasets
from repro.core.traffic import summarize_traffic, traffic_class_shares
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile


def tiny_config(storage: str) -> ScenarioConfig:
    return ScenarioConfig(
        profile=WorldProfile(online_servers=150),
        days=2,
        daily_cid_sample=60,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=4,
        storage=storage,
    )


@pytest.fixture(scope="module")
def memory_result():
    return run_campaign(tiny_config("memory"))


@pytest.fixture(scope="module")
def sqlite_result(tmp_path_factory):
    directory = tmp_path_factory.mktemp("campaign-store")
    return run_campaign(tiny_config(f"sqlite:{directory}"))


class TestStorageParity:
    def test_same_log_sizes(self, memory_result, sqlite_result):
        assert len(memory_result.hydra.log) == len(sqlite_result.hydra.log) > 0
        assert (
            len(memory_result.bitswap_monitor.log)
            == len(sqlite_result.bitswap_monitor.log)
            > 0
        )

    def test_same_log_contents(self, memory_result, sqlite_result):
        assert memory_result.hydra.log[:100] == sqlite_result.hydra.log[:100]
        assert (
            memory_result.bitswap_monitor.log[:100]
            == sqlite_result.bitswap_monitor.log[:100]
        )

    def test_same_traffic_analysis(self, memory_result, sqlite_result):
        assert traffic_class_shares(memory_result.hydra.log) == traffic_class_shares(
            sqlite_result.hydra.log
        )

    def test_summary_matches_multi_pass_analysis(self, memory_result):
        from repro.core import traffic

        log = memory_result.hydra.log
        summary = summarize_traffic(log)
        assert summary.total == len(log)
        assert summary.class_shares == traffic.traffic_class_shares(log)
        assert dict(summary.peerid_volumes) == traffic.peerid_volumes(log)
        assert dict(summary.ip_volumes) == traffic.ip_volumes(log)

    def test_single_pass_cloud_reports_match(self, memory_result):
        from repro.core import traffic
        from repro.kademlia.messages import TrafficClass

        log = memory_result.hydra.log
        cloud_db = memory_result.world.cloud_db
        combined = traffic.cloud_traffic_reports_by_class(log, cloud_db)
        for traffic_class in (None, TrafficClass.DOWNLOAD, TrafficClass.ADVERTISEMENT):
            if traffic_class not in combined:
                continue
            separate = traffic.cloud_traffic_report(log, cloud_db, traffic_class)
            assert combined[traffic_class] == separate

    def test_export_works_from_disk_backed_logs(self, sqlite_result, tmp_path):
        counts = datasets.export_campaign(sqlite_result, tmp_path / "out")
        assert counts["hydra_messages"] == len(sqlite_result.hydra.log)
        assert counts["bitswap_messages"] == len(sqlite_result.bitswap_monitor.log)
