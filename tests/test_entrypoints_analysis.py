"""Entry-point analyses (§7): DNSLink, gateways, ENS."""

import random

import pytest

from repro.core.entrypoints import (
    dnslink_report,
    ens_providers_report,
    gateway_sides_report,
)
from repro.dns.scanner import DNSLinkRecord, DNSLinkScanResult
from repro.ids.cid import CID
from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID
from repro.kademlia.providers import ProviderRecord
from repro.monitors.gateway_probe import GatewayProbeReport
from repro.monitors.provider_fetcher import ProviderObservation
from repro.world.clouddb import CloudIPDatabase
from repro.world.geodb import GeoIPDatabase
from repro.world.ipspace import IPAllocator, format_ip


@pytest.fixture(scope="module")
def env():
    allocator = IPAllocator()
    cloudflare = allocator.allocate_block("cloudflare", "US", True, 24)
    aws = allocator.allocate_block("amazon-aws", "DE", True, 24)
    isp = allocator.allocate_block("isp-se", "SE", False, 24)
    return {
        "cloud_db": CloudIPDatabase(allocator.blocks),
        "geo_db": GeoIPDatabase(allocator.blocks),
        "cf_ip": format_ip(cloudflare.base + 1),
        "cf_ip2": format_ip(cloudflare.base + 2),
        "aws_ip": format_ip(aws.base + 1),
        "isp_ip": format_ip(isp.base + 1),
    }


class TestDNSLink:
    def test_report(self, env):
        result = DNSLinkScanResult(
            input_names=10, root_domains=8, registered_domains=6,
            dnslink_records=[
                DNSLinkRecord("a.com", "ipfs", "bafy1", (env["cf_ip"],)),
                DNSLinkRecord("b.com", "ipfs", "bafy2", (env["cf_ip2"],)),
                DNSLinkRecord("c.com", "ipns", "k51", (env["aws_ip"],)),
                DNSLinkRecord("d.com", "ipfs", "bafy3", (env["isp_ip"],)),
            ],
        )
        report = dnslink_report(result, env["cloud_db"], public_gateway_ips={env["cf_ip"]})
        assert report.num_records == 4
        assert report.num_unique_ips == 4
        assert report.provider_shares["cloudflare"] == pytest.approx(0.5)
        assert report.noncloud_share == pytest.approx(0.25)
        assert report.public_gateway_ip_share == pytest.approx(0.25)

    def test_duplicate_ips_counted_once(self, env):
        result = DNSLinkScanResult(
            input_names=2, root_domains=2, registered_domains=2,
            dnslink_records=[
                DNSLinkRecord("a.com", "ipfs", "x", (env["cf_ip"],)),
                DNSLinkRecord("b.com", "ipfs", "y", (env["cf_ip"],)),
            ],
        )
        report = dnslink_report(result, env["cloud_db"], set())
        assert report.num_unique_ips == 1

    def test_empty(self, env):
        result = DNSLinkScanResult(0, 0, 0, [])
        report = dnslink_report(result, env["cloud_db"], set())
        assert report.public_gateway_ip_share == 0.0


class TestGatewaySides:
    def test_report(self, env):
        rng = random.Random(1)
        reports = {
            "cloudflare-ipfs.com": GatewayProbeReport(
                "cloudflare-ipfs.com", True,
                overlay_ids={PeerID.generate(rng) for _ in range(3)},
                overlay_ips={env["cf_ip"], env["cf_ip2"]},
            ),
            "self-hosted.se": GatewayProbeReport(
                "self-hosted.se", True,
                overlay_ids={PeerID.generate(rng)},
                overlay_ips={env["isp_ip"]},
            ),
            "dead.example": GatewayProbeReport("dead.example", False),
        }
        result = gateway_sides_report(
            reports,
            frontend_ips={env["cf_ip"], env["aws_ip"]},
            cloud_db=env["cloud_db"],
            geo_db=env["geo_db"],
        )
        assert result.num_functional_endpoints == 2
        assert result.num_overlay_ids == 4
        assert result.overlay_provider_shares["cloudflare"] == pytest.approx(2 / 3)
        assert result.overlay_provider_shares["non-cloud"] == pytest.approx(1 / 3)
        assert result.frontend_country_shares == {"US": 0.5, "DE": 0.5}
        assert result.overlay_country_shares["SE"] == pytest.approx(1 / 3)


class TestENS:
    def _observation(self, env, addr_specs):
        rng = random.Random(2)
        cid = CID.generate(rng)
        records = []
        for ip, circuit in addr_specs:
            provider = PeerID.generate(rng)
            if circuit:
                relay = PeerID.generate(rng)
                addrs = (Multiaddr.circuit(ip, 4001, relay, provider),)
            else:
                addrs = (Multiaddr.direct(ip, 4001, provider),)
            records.append(
                ProviderRecord(cid=cid, provider=provider, addrs=addrs, published_at=0.0)
            )
        return ProviderObservation(
            cid=cid, collected_at=0.0, records=tuple(records),
            reachable=tuple(records), resolvers_queried=20, walk_messages=10,
        )

    def test_unique_ip_attribution(self, env):
        observations = [
            self._observation(env, [(env["cf_ip"], False), (env["aws_ip"], False)]),
            self._observation(env, [(env["isp_ip"], False)]),
        ]
        report = ens_providers_report(observations, env["cloud_db"], env["geo_db"])
        assert report.num_cids == 2
        assert report.num_unique_ips == 3
        assert report.cloud_share == pytest.approx(2 / 3)
        assert report.us_de_share == pytest.approx(2 / 3)

    def test_circuit_addresses_attribute_to_relay_ip(self, env):
        """A NAT-ed provider behind a cloud relay shows up as a cloud IP —
        the address-level view of Fig. 20."""
        observations = [self._observation(env, [(env["cf_ip"], True)])]
        report = ens_providers_report(observations, env["cloud_db"], env["geo_db"])
        assert report.cloud_share == 1.0

    def test_empty(self, env):
        report = ens_providers_report([], env["cloud_db"], env["geo_db"])
        assert report.num_unique_ips == 0
        assert report.cloud_share == pytest.approx(1.0)  # vacuous: no non-cloud
