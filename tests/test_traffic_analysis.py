"""Traffic analyses (§5): classification, lifetimes, Pareto, attribution."""

import random

import pytest

from repro.core import traffic
from repro.core.pareto import top_share
from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageType, TrafficClass
from repro.monitors.bitswap_monitor import BitswapLogEntry
from repro.monitors.hydra import HydraBooster
from repro.netsim.clock import SECONDS_PER_DAY
from repro.world.ipspace import IPAllocator
from repro.world.clouddb import CloudIPDatabase
from repro.world.rdns import ReverseDNS


@pytest.fixture(scope="module")
def setting():
    rng = random.Random(91)
    allocator = IPAllocator()
    cloud_block = allocator.allocate_block("amazon-aws", "US", True, 24)
    isp_block = allocator.allocate_block("isp-de", "DE", False, 24)
    web3_block = allocator.allocate_block("amazon-aws", "US", True, 28)
    cloud_db = CloudIPDatabase(allocator.blocks)
    rdns = ReverseDNS()
    rdns.register_block(web3_block, "node-{ip}.web3.storage")
    rdns.register_block(cloud_block, "ec2-{ip}.compute.amazonaws.com")

    from repro.world.ipspace import format_ip

    hydra = HydraBooster(num_heads=4, rng=rng)
    cloud_peer = PeerID.generate(rng)
    isp_peer = PeerID.generate(rng)
    web3_peer = PeerID.generate(rng)
    hydra_peer = hydra.heads[0]
    cloud_ip = format_ip(cloud_block.base + 1)
    isp_ip = format_ip(isp_block.base + 1)
    web3_ip = format_ip(web3_block.base + 1)
    cid = CID.generate(rng)
    # Day 0: cloud peer downloads heavily; ISP peer once.
    for _ in range(8):
        hydra.record(100.0, cloud_peer, cloud_ip, MessageType.GET_PROVIDERS, cid)
    hydra.record(200.0, isp_peer, isp_ip, MessageType.GET_PROVIDERS, cid)
    # Day 1: web3 advertises; hydra fleet downloads; a FIND_NODE.
    t1 = SECONDS_PER_DAY + 100.0
    for _ in range(4):
        hydra.record(t1, web3_peer, web3_ip, MessageType.ADD_PROVIDER, cid)
    for _ in range(6):
        hydra.record(t1, hydra_peer, cloud_ip, MessageType.GET_PROVIDERS, CID.generate(rng))
    hydra.record(t1, isp_peer, isp_ip, MessageType.FIND_NODE, target_key=5)
    return {
        "hydra": hydra,
        "cloud_db": cloud_db,
        "rdns": rdns,
        "peers": dict(cloud=cloud_peer, isp=isp_peer, web3=web3_peer, hydra=hydra_peer),
        "ips": dict(cloud=cloud_ip, isp=isp_ip, web3=web3_ip),
        "cid": cid,
    }


class TestClassShares:
    def test_shares_sum_to_one(self, setting):
        result = traffic.traffic_class_shares(setting["hydra"].log)
        assert sum(result.values()) == pytest.approx(1.0)

    def test_counts(self, setting):
        result = traffic.traffic_class_shares(setting["hydra"].log)
        total = len(setting["hydra"].log)
        assert result["download"] == pytest.approx(15 / total)
        assert result["advertisement"] == pytest.approx(4 / total)
        assert result["other"] == pytest.approx(1 / total)

    def test_empty_log(self):
        assert traffic.traffic_class_shares([]) == {}


class TestVolumes:
    def test_peerid_volumes(self, setting):
        volumes = traffic.peerid_volumes(setting["hydra"].log)
        assert volumes[setting["peers"]["cloud"]] == 8

    def test_ip_volumes(self, setting):
        volumes = traffic.ip_volumes(setting["hydra"].log)
        assert volumes[setting["ips"]["cloud"]] == 14  # incl. hydra fleet

    def test_pareto_reports(self, setting):
        report = traffic.ip_pareto(
            traffic.ip_volumes(setting["hydra"].log), setting["cloud_db"]
        )
        # Cloud volume: everything except the two ISP messages.
        total = len(setting["hydra"].log)
        assert report.subgroup_share == pytest.approx((total - 2) / total)
        assert report.curve[-1][1] == pytest.approx(1.0)

    def test_gateway_share(self, setting):
        report = traffic.peerid_pareto(
            traffic.peerid_volumes(setting["hydra"].log),
            gateway_peers={setting["peers"]["cloud"]},
        )
        assert report.subgroup_share == pytest.approx(8 / len(setting["hydra"].log))


class TestDaysSeen:
    def test_cid_days(self, setting):
        histogram = traffic.days_seen_histogram(setting["hydra"].log, "cid")
        assert histogram[2] == 1  # the shared cid appears on two days
        assert histogram[1] == 6  # hydra-fleet one-off cids

    def test_ip_days(self, setting):
        histogram = traffic.days_seen_histogram(setting["hydra"].log, "ip")
        assert histogram[2] == 2  # cloud_ip and isp_ip both span days
        assert histogram[1] == 1  # web3 ip

    def test_unknown_kind_rejected(self, setting):
        with pytest.raises(ValueError):
            traffic.days_seen_histogram(setting["hydra"].log, "asn")

    def test_cloud_share_by_longevity(self, setting):
        by_days = traffic.ip_days_seen_cloud_share(
            setting["hydra"].log, setting["cloud_db"]
        )
        assert by_days[1] == 1.0   # single-day IP is the web3 (cloud) one
        assert by_days[2] == 0.5   # cloud + isp


class TestCloudTrafficReport:
    def test_by_count_vs_by_volume(self, setting):
        report = traffic.cloud_traffic_report(setting["hydra"].log, setting["cloud_db"])
        assert report.cloud_share_by_ip_count == pytest.approx(2 / 3)
        total = len(setting["hydra"].log)
        assert report.cloud_share_by_volume == pytest.approx((total - 2) / total)

    def test_class_filter(self, setting):
        downloads = traffic.cloud_traffic_report(
            setting["hydra"].log, setting["cloud_db"], TrafficClass.DOWNLOAD
        )
        assert downloads.provider_shares_by_volume["amazon-aws"] == pytest.approx(14 / 15)


class TestPlatformAttribution:
    def test_hydra_peers_attributed_first(self, setting):
        label = traffic.attribute_platform(
            setting["ips"]["cloud"], setting["peers"]["hydra"],
            setting["rdns"], {setting["peers"]["hydra"]},
        )
        assert label == "hydra"

    def test_rdns_suffix_match(self, setting):
        assert (
            traffic.attribute_platform(
                setting["ips"]["web3"], setting["peers"]["web3"], setting["rdns"], set()
            )
            == "web3-storage"
        )

    def test_generic_aws(self, setting):
        assert (
            traffic.attribute_platform(
                setting["ips"]["cloud"], setting["peers"]["cloud"], setting["rdns"], set()
            )
            == "amazon-aws-other"
        )

    def test_no_rdns_is_other(self, setting):
        assert (
            traffic.attribute_platform(
                setting["ips"]["isp"], setting["peers"]["isp"], setting["rdns"], set()
            )
            == "other"
        )

    def test_traffic_shares_by_class(self, setting):
        hydra_peers = {setting["peers"]["hydra"]}
        adverts = traffic.platform_traffic_shares(
            setting["hydra"].log, setting["rdns"], hydra_peers, TrafficClass.ADVERTISEMENT
        )
        assert adverts == {"web3-storage": 1.0}
        downloads = traffic.platform_traffic_shares(
            setting["hydra"].log, setting["rdns"], hydra_peers, TrafficClass.DOWNLOAD
        )
        assert downloads["hydra"] == pytest.approx(6 / 15)

    def test_bitswap_attribution(self, setting):
        rng = random.Random(92)
        entries = [
            BitswapLogEntry(0.0, setting["peers"]["web3"], setting["ips"]["web3"], CID.generate(rng)),
            BitswapLogEntry(0.0, setting["peers"]["isp"], setting["ips"]["isp"], CID.generate(rng)),
        ]
        shares = traffic.bitswap_platform_shares(entries, setting["rdns"], set())
        assert shares == {"web3-storage": 0.5, "other": 0.5}
