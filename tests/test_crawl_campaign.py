"""The crawler's campaign helper (repeated snapshots over time)."""

import random

import pytest

from repro.core.crawler import DHTCrawler
from repro.netsim.churn import ChurnProcess
from repro.netsim.network import Overlay
from repro.world.population import build_world
from repro.world.profiles import WorldProfile


@pytest.fixture()
def live_overlay():
    world = build_world(WorldProfile(online_servers=200, seed=91))
    overlay = Overlay(world)
    overlay.bootstrap()
    overlay.schedule_periodic_refresh()
    ChurnProcess(overlay).start()
    return overlay


class TestCampaignHelper:
    def test_runs_requested_crawls_spaced_in_time(self, live_overlay):
        crawler = DHTCrawler(live_overlay, rng=random.Random(92))
        dataset = crawler.campaign(num_crawls=4, interval_seconds=6 * 3600.0)
        assert len(dataset) == 4
        starts = [snapshot.started_at for snapshot in dataset.snapshots]
        assert starts == sorted(starts)
        assert starts[1] - starts[0] == pytest.approx(6 * 3600.0)

    def test_crawl_ids_sequential(self, live_overlay):
        crawler = DHTCrawler(live_overlay, rng=random.Random(93))
        dataset = crawler.campaign(num_crawls=3, interval_seconds=3600.0)
        assert [s.crawl_id for s in dataset.snapshots] == [0, 1, 2]

    def test_run_between_hook(self, live_overlay):
        crawler = DHTCrawler(live_overlay, rng=random.Random(94))
        visits = []

        def advance(index):
            visits.append(index)
            live_overlay.scheduler.run_until(live_overlay.now + 1800.0)

        dataset = crawler.campaign(num_crawls=3, interval_seconds=0.0, run_between=advance)
        assert visits == [0, 1]
        assert len(dataset) == 3

    def test_churn_changes_snapshots(self, live_overlay):
        crawler = DHTCrawler(live_overlay, rng=random.Random(95))
        dataset = crawler.campaign(num_crawls=2, interval_seconds=2 * 86400.0)
        first = set(dataset.snapshots[0].observations)
        second = set(dataset.snapshots[1].observations)
        assert first != second          # churn happened in between
        assert first & second           # but the stable core persists
