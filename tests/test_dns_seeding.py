"""DNS world seeding: namespace shape and adopter wiring."""

import random

import pytest

from repro.dns.records import DNSLINK_PREFIX, RRType
from repro.dns.scanner import ActiveScanner
from repro.dns.seeding import DNSLinkSeedConfig, seed_dns_world
from repro.world.population import build_world
from repro.world.profiles import WorldProfile


@pytest.fixture(scope="module")
def dns_world():
    world = build_world(WorldProfile(online_servers=200, seed=61))
    config = DNSLinkSeedConfig(background_domains=400, dnslink_domains=120)
    return world, seed_dns_world(world, config=config, rng=random.Random(62))


class TestNamespace:
    def test_all_gateway_domains_have_zones(self, dns_world):
        _, dns = dns_world
        for domain in dns.gateway_domains():
            assert dns.resolver.soa_exists(domain)
            assert dns.resolver.resolve_a(domain)

    def test_frontend_ips_in_passive_feed(self, dns_world):
        _, dns = dns_world
        observed = dns.passive.ips_for_domains(dns.gateway_domains())
        assert observed == set(dns.all_frontend_ips())

    def test_background_domains_have_no_dnslink(self, dns_world):
        _, dns = dns_world
        background = [
            name
            for name in dns.scan_input
            if name not in set(dns.dnslink_domains) and not name.startswith("www.")
        ]
        sample = background[:40]
        for domain in sample:
            assert not dns.resolver.txt(f"{DNSLINK_PREFIX}.{domain}")

    def test_dnslink_domains_have_valid_records(self, dns_world):
        _, dns = dns_world
        from repro.dns.records import parse_dnslink_txt

        for domain in dns.dnslink_domains[:40]:
            values = dns.resolver.txt(f"{DNSLINK_PREFIX}.{domain}")
            assert values
            assert parse_dnslink_txt(values[0]) is not None


class TestAdopterWiring:
    def test_scan_recovers_all_adopters(self, dns_world):
        _, dns = dns_world
        result = ActiveScanner(dns.resolver).scan(dns.scan_input)
        assert len(result.dnslink_records) == len(dns.dnslink_domains)

    def test_every_adopter_resolves_to_an_ip(self, dns_world):
        _, dns = dns_world
        result = ActiveScanner(dns.resolver).scan(dns.dnslink_domains)
        resolved = [record for record in result.dnslink_records if record.a_record_ips]
        assert len(resolved) == len(result.dnslink_records)

    def test_wiring_mix_shapes_cloud_attribution(self, dns_world):
        world, dns = dns_world
        result = ActiveScanner(dns.resolver).scan(dns.dnslink_domains)
        ips = set(result.all_ips)
        cloudflare = sum(1 for ip in ips if world.cloud_db.lookup(ip) == "cloudflare")
        noncloud = sum(1 for ip in ips if not world.cloud_db.is_cloud(ip))
        assert cloudflare / len(ips) > 0.3   # Cloudflare-heavy
        assert 0.05 < noncloud / len(ips) < 0.4  # a real non-cloud fringe

    def test_public_gateway_overlap_is_partial(self, dns_world):
        _, dns = dns_world
        result = ActiveScanner(dns.resolver).scan(dns.dnslink_domains)
        ips = set(result.all_ips)
        frontend = set(dns.all_frontend_ips())
        overlap = len(ips & frontend) / len(ips)
        assert 0.0 < overlap < 0.5  # only a minority reuse the public gateways

    def test_ipns_share(self, dns_world):
        _, dns = dns_world
        result = ActiveScanner(dns.resolver).scan(dns.dnslink_domains)
        kinds = [record.kind for record in result.dnslink_records]
        ipns_share = kinds.count("ipns") / len(kinds)
        assert 0.05 < ipns_share < 0.4
