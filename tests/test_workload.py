"""The calibrated traffic engine."""

import random

import pytest

from repro.content.catalog import ContentCatalog
from repro.workload import TrafficEngine, WorkloadConfig, _poisson
from repro.ids.cid import CID
from repro.kademlia.messages import TrafficClass
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.hydra import HydraBooster
from repro.netsim.network import Overlay
from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile


@pytest.fixture()
def engine():
    world = build_world(WorldProfile(online_servers=250, seed=51))
    from repro.gateway.operators import install_gateway_specs

    install_gateway_specs(world)
    overlay = Overlay(world)
    overlay.bootstrap()
    catalog = ContentCatalog(random.Random(52))
    hydra = HydraBooster(num_heads=20, rng=random.Random(53))
    monitor = BitswapMonitor(random.Random(54))
    return TrafficEngine(overlay, catalog, hydra, monitor, WorkloadConfig(), random.Random(55))


def online_of(engine, node_class):
    return next(
        node
        for node in engine.overlay.nodes
        if node.node_class is node_class and node.online and node.ips
    )


class TestPoisson:
    def test_zero_mean(self, rng):
        assert _poisson(0.0, rng) == 0

    def test_small_mean_expectation(self, rng):
        draws = [_poisson(2.5, rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(2.5, rel=0.05)

    def test_large_mean_normal_approximation(self, rng):
        draws = [_poisson(100.0, rng) for _ in range(2000)]
        assert sum(draws) / len(draws) == pytest.approx(100.0, rel=0.02)
        assert min(draws) >= 0


class TestPublish:
    def test_publish_creates_item_and_record(self, engine):
        node = online_of(engine, NodeClass.CLOUD_STABLE)
        before = len(engine.catalog)
        engine.publish(node)
        assert len(engine.catalog) == before + 1
        item = engine.catalog.items[-1]
        assert engine.overlay.providers.has_records(item.cid, engine.overlay.now)
        assert item.cid in node.provided_cids

    def test_publish_caps_provided_cids(self, engine):
        node = online_of(engine, NodeClass.CLOUD_STABLE)
        for _ in range(engine.config.max_provided_cids + 20):
            engine.publish(node)
        assert len(node.provided_cids) <= engine.config.max_provided_cids

    def test_publish_evicts_oldest_first(self, engine):
        """The provide-set cap is FIFO: the earliest published CIDs fall
        out, the newest survive (and the order never depends on the
        process hash seed)."""
        node = online_of(engine, NodeClass.CLOUD_STABLE)
        cap = engine.config.max_provided_cids
        published = []
        for _ in range(cap + 5):
            engine.publish(node)
            published.append(engine.catalog.items[-1].cid)
        assert list(node.provided_cids) == published[-cap:]

    def test_nat_publish_logs_relay(self, engine):
        engine.config.advert_walk_contacts = 10_000  # force capture
        nat = online_of(engine, NodeClass.NAT_CLIENT)
        engine.overlay.ensure_relay(nat)
        engine.publish(nat)
        adverts = [
            e for e in engine.hydra.log if e.traffic_class is TrafficClass.ADVERTISEMENT
        ]
        assert adverts
        assert any(entry.via_relay is not None for entry in adverts)

    def test_pinning_adds_platform_provider(self, engine):
        engine.config.user_pin_prob = 1.0
        node = online_of(engine, NodeClass.RESIDENTIAL_STABLE)
        engine.publish(node)
        item = engine.catalog.items[-1]
        providers = {
            record.provider
            for record in engine.overlay.providers.get(item.cid, engine.overlay.now)
        }
        platform_peers = {
            n.peer
            for n in engine.overlay.nodes
            if n.node_class is NodeClass.PLATFORM and n.peer is not None
        }
        assert providers & platform_peers


class TestDownload:
    def test_download_logs_bitswap_broadcast(self, engine):
        engine.catalog.mint_platform_set("web3.storage", 20)
        engine.catalog.build_day_index(0)
        node = next(
            n
            for n in engine.overlay.nodes
            if n.node_class is NodeClass.CLOUD_STABLE
            and n.online
            and n.ips
            and engine.monitor.is_connected(n)
        )
        before = len(engine.monitor.log)
        for _ in range(30):
            engine.download(node)
        assert len(engine.monitor.log) > before

    def test_indexers_skip_bitswap(self, engine):
        engine.catalog.mint_platform_set("web3.storage", 20)
        engine.catalog.build_day_index(0)
        indexer_node = next(
            n for n in engine.overlay.nodes if n.spec.platform == "aws-mystery" and n.online
        )
        before = len(engine.monitor.log)
        for _ in range(20):
            engine.download(indexer_node)
        assert len(engine.monitor.log) == before  # no broadcasts
        assert engine.stats["dht_walks"] >= 20    # always walks

    def test_amplification_cache_suppresses_repeats(self, engine):
        engine.config.hydra_fleet_visibility = 1.0
        engine.config.hydra_amplification_walks = 1.0
        cid = CID.generate(random.Random(56))
        engine._hydra_amplification(cid)
        first = engine.stats["amplified_walks"]
        engine._hydra_amplification(cid)  # cache hit: no new walks
        assert engine.stats["amplified_walks"] == first
        assert first >= 1

    def test_reprovide_probability_zero_means_never(self, engine):
        for cls in engine.config.reprovide_probs:
            engine.config.reprovide_probs[cls] = 0.0
        engine.catalog.mint_platform_set("web3.storage", 20)
        engine.catalog.build_day_index(0)
        node = online_of(engine, NodeClass.CLOUD_STABLE)
        before = set(node.provided_cids)
        for _ in range(20):
            engine.download(node)
        assert set(node.provided_cids) == before


class TestDailyPasses:
    def test_seed_platform_content_scales_sets(self, engine):
        engine.seed_platform_content()
        web3 = engine.catalog.platform_items("web3.storage")
        pinata = engine.catalog.platform_items("pinata")
        assert len(web3) > len(pinata) > 0
        # Every pinned item has at least one platform record.
        sample = web3[0]
        assert engine.overlay.providers.has_records(sample.cid, engine.overlay.now)

    def test_user_reprovide_refreshes_records(self, engine):
        node = online_of(engine, NodeClass.RESIDENTIAL_STABLE)
        engine.publish(node)
        item = engine.catalog.items[-1]
        # Let the record age past the TTL, then re-provide.
        engine.overlay.scheduler.run_until(engine.overlay.now + 25 * 3600.0)
        assert not engine.overlay.providers.has_records(item.cid, engine.overlay.now)
        engine.catalog.build_day_index(engine.overlay_clock_day)
        engine.user_reprovide_pass()
        assert engine.overlay.providers.has_records(item.cid, engine.overlay.now)

    def test_reprovide_drops_dead_items(self, engine):
        node = online_of(engine, NodeClass.RESIDENTIAL_STABLE)
        item = engine.catalog.add(
            __import__("repro.content.catalog", fromlist=["ContentItem"]).ContentItem(
                cid=CID.generate(random.Random(57)),
                publisher=node.spec.index,
                created_day=0,
                lifetime_days=1,
            )
        )
        node.provided_cids.add(item.cid)
        engine.overlay.scheduler.run_until(engine.overlay.now + 3 * 86400.0)
        engine.catalog.build_day_index(engine.overlay_clock_day)
        engine.user_reprovide_pass()
        assert item.cid not in node.provided_cids

    def test_run_tick_generates_all_classes_of_traffic(self, engine):
        engine.seed_platform_content()
        engine.catalog.build_day_index(0)
        engine.platform_reprovide_pass()
        engine.run_tick(hours=6.0)
        shares = {
            cls: len(engine.hydra.entries(cls))
            for cls in (TrafficClass.DOWNLOAD, TrafficClass.ADVERTISEMENT, TrafficClass.OTHER)
        }
        assert all(count > 0 for count in shares.values())
