"""The live control plane serves the stream and can stop a campaign.

Unit coverage for :mod:`repro.obs.serve` (address parsing, publisher,
endpoint dispatch) plus the end-to-end contract: a campaign started
with ``live="127.0.0.1:0"`` serves ``/status`` and ``/sketches`` while
it runs, and ``POST /stop`` ends the simulation early and cleanly
(``CampaignResult.stopped_early``).
"""

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.obs.serve import (
    DASHBOARD_HTML,
    ControlServer,
    StreamPublisher,
    fetch_json,
    parse_address,
)
from repro.obs.stream import SKETCHES_SCHEMA
from repro.scenario.run import MeasurementCampaign

from test_parallel_determinism import parity_config


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("127.0.0.1:8377") == ("127.0.0.1", 8377)

    def test_bare_host_gets_ephemeral_port(self):
        assert parse_address("localhost") == ("localhost", 0)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address(":9000") == ("127.0.0.1", 9000)

    def test_port_zero_means_ephemeral(self):
        assert parse_address("127.0.0.1:0") == ("127.0.0.1", 0)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_address("not-an-address:nope")


class TestStreamPublisher:
    def test_publish_and_get(self):
        publisher = StreamPublisher()
        assert publisher.get("status") is None
        publisher.publish("status", {"phase": "simulate"})
        blob = publisher.get("status")
        assert json.loads(blob) == {"phase": "simulate"}

    def test_stop_flag(self):
        publisher = StreamPublisher()
        assert not publisher.stop_requested
        publisher.request_stop()
        assert publisher.stop_requested


class TestControlServer:
    @pytest.fixture()
    def server(self):
        server = ControlServer("127.0.0.1:0").start()
        yield server
        server.close()

    def test_binds_before_start(self):
        server = ControlServer("127.0.0.1:0")
        try:
            # The port is known at construction so callers can announce
            # the URL before the campaign starts serving.
            assert server.url.startswith("http://127.0.0.1:")
            assert not server.url.endswith(":0")
        finally:
            server.close()

    def test_dashboard_at_root(self, server):
        with urllib.request.urlopen(server.url + "/", timeout=5) as response:
            body = response.read().decode()
        assert body == DASHBOARD_HTML
        assert "live campaign" in body

    def test_endpoints_empty_until_published(self, server):
        assert fetch_json(server.url + "/status") == {}
        assert fetch_json(server.url + "/sketches") == {}
        assert fetch_json(server.url + "/metrics") == {}

    def test_published_blob_is_served(self, server):
        server.publisher.publish("status", {"phase": "crawl", "events": 7})
        assert fetch_json(server.url + "/status") == {"phase": "crawl", "events": 7}

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope", timeout=5)
        assert excinfo.value.code == 404

    def test_stop_endpoint_sets_flag(self, server):
        reply = fetch_json(server.url + "/stop")
        assert reply == {"stopping": True}
        assert server.publisher.stop_requested

    def test_close_is_idempotent(self):
        server = ControlServer("127.0.0.1:0").start()
        server.close()
        server.close()

    def test_context_manager(self):
        with ControlServer("127.0.0.1:0") as server:
            assert fetch_json(server.url + "/status") == {}


class TestLiveCampaignEndToEnd:
    def test_serve_poll_and_stop(self):
        config = replace(
            parity_config(1), days=4, live="127.0.0.1:0", progress=False
        )
        campaign = MeasurementCampaign(config)
        campaign.build()
        assert campaign.control_server is not None
        url = campaign.control_server.url

        box = {}

        def run():
            box["result"] = campaign.run()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        try:
            # Poll /status until the simulation is visibly running.
            status = {}
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = fetch_json(url + "/status")
                if status.get("events", 0) > 0 and status.get("state") == "running":
                    break
                time.sleep(0.01)
            assert status.get("events", 0) > 0, f"no live status seen: {status}"
            assert status["phase"] == "simulate"
            assert "day" in status

            sketches = fetch_json(url + "/sketches")
            assert sketches.get("schema") == SKETCHES_SCHEMA
            assert sketches.get("events", 0) > 0

            # Ask the campaign to stop early.
            request = urllib.request.Request(url + "/stop", data=b"", method="POST")
            with urllib.request.urlopen(request, timeout=5) as response:
                assert json.loads(response.read()) == {"stopping": True}
        finally:
            thread.join(timeout=120)
        assert not thread.is_alive()

        result = box["result"]
        assert result.stopped_early is True
        assert result.live_url == url
        assert result.sketches is not None
        # The final status is published before the server is torn down.
        final = json.loads(campaign.control_server.publisher.get("status"))
        assert final["state"] == "stopped"
        assert final["phase"] == "done"
        campaign.close_live()
        campaign.close_live()
        with pytest.raises((urllib.error.URLError, OSError)):
            fetch_json(url + "/status", timeout=1)
