"""The 256-bit keyspace and the XOR metric."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.ids.keys import (
    KEY_BITS,
    KEY_SPACE,
    bucket_index,
    common_prefix_len,
    key_from_bytes,
    key_to_hex,
    random_key_in_bucket,
    xor_distance,
)

keys = st.integers(min_value=0, max_value=KEY_SPACE - 1)


class TestKeyDerivation:
    def test_key_from_bytes_is_sha256(self):
        import hashlib

        assert key_from_bytes(b"abc") == int.from_bytes(hashlib.sha256(b"abc").digest(), "big")

    def test_key_in_range(self):
        assert 0 <= key_from_bytes(b"x") < KEY_SPACE

    def test_key_to_hex_width(self):
        assert len(key_to_hex(0)) == 64
        assert len(key_to_hex(KEY_SPACE - 1)) == 64


class TestXorMetric:
    @given(keys)
    def test_identity(self, a):
        assert xor_distance(a, a) == 0

    @given(keys, keys)
    def test_symmetry(self, a, b):
        assert xor_distance(a, b) == xor_distance(b, a)

    @given(keys, keys, keys)
    def test_triangle_inequality(self, a, b, c):
        # XOR satisfies d(a,c) <= d(a,b) XOR d(b,c) <= d(a,b) + d(b,c).
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)

    @given(keys, keys)
    def test_unidirectionality(self, a, distance):
        # For any a and distance d there is exactly one b with d(a,b)=d.
        b = a ^ distance
        assert xor_distance(a, b) == distance


class TestCommonPrefix:
    def test_equal_keys_share_all_bits(self):
        assert common_prefix_len(42, 42) == KEY_BITS

    def test_msb_difference(self):
        assert common_prefix_len(0, 1 << (KEY_BITS - 1)) == 0

    def test_lsb_difference(self):
        assert common_prefix_len(0, 1) == KEY_BITS - 1

    @given(keys, keys)
    def test_matches_naive_bit_scan(self, a, b):
        expected = 0
        for bit in range(KEY_BITS - 1, -1, -1):
            if (a >> bit) & 1 == (b >> bit) & 1:
                expected += 1
            else:
                break
        assert common_prefix_len(a, b) == expected


class TestBucketIndex:
    def test_own_key_rejected(self):
        with pytest.raises(ValueError):
            bucket_index(5, 5)

    @given(keys, keys)
    def test_equals_common_prefix(self, a, b):
        if a == b:
            return
        assert bucket_index(a, b) == common_prefix_len(a, b)


class TestRandomKeyInBucket:
    @given(keys, st.integers(min_value=0, max_value=KEY_BITS - 1), st.integers())
    def test_lands_in_requested_bucket(self, own, index, seed):
        rng = random.Random(seed)
        key = random_key_in_bucket(own, index, rng)
        assert bucket_index(own, key) == index

    def test_rejects_out_of_range_index(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_key_in_bucket(0, KEY_BITS, rng)
        with pytest.raises(ValueError):
            random_key_in_bucket(0, -1, rng)

    def test_deepest_bucket(self):
        rng = random.Random(0)
        key = random_key_in_bucket(7, KEY_BITS - 1, rng)
        assert key == 7 ^ 1  # only one key differs in exactly the last bit
