"""Multiaddresses, including p2p-circuit relay addresses."""

import random

import pytest

from repro.ids.multiaddr import Multiaddr
from repro.ids.peerid import PeerID


@pytest.fixture()
def peers():
    rng = random.Random(9)
    return PeerID.generate(rng), PeerID.generate(rng)


class TestDirect:
    def test_format(self, peers):
        peer, _ = peers
        addr = Multiaddr.direct("1.10.20.30", 29087, peer)
        assert str(addr) == f"/ip4/1.10.20.30/tcp/29087/p2p/{peer.to_base58()}"

    def test_not_circuit(self, peers):
        peer, _ = peers
        assert not Multiaddr.direct("1.2.3.4", 4001, peer).is_circuit

    def test_parse_roundtrip(self, peers):
        peer, _ = peers
        addr = Multiaddr.direct("10.0.0.1", 4001, peer)
        parsed = Multiaddr.parse(str(addr))
        assert parsed == addr


class TestCircuit:
    def test_format_embeds_relay(self, peers):
        target, relay = peers
        addr = Multiaddr.circuit("5.6.7.8", 4001, relay, target)
        text = str(addr)
        assert "/p2p-circuit/" in text
        assert relay.to_base58() in text
        assert target.to_base58() in text

    def test_transport_ip_is_the_relays(self, peers):
        """The §6 attribution subtlety: a NAT-ed provider's observable
        address is its relay's address."""
        target, relay = peers
        addr = Multiaddr.circuit("5.6.7.8", 4001, relay, target)
        assert addr.ip == "5.6.7.8"
        assert addr.peer == target
        assert addr.relay == relay
        assert addr.is_circuit

    def test_parse_roundtrip(self, peers):
        target, relay = peers
        addr = Multiaddr.circuit("5.6.7.8", 4001, relay, target)
        assert Multiaddr.parse(str(addr)) == addr


class TestParseErrors:
    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Multiaddr.parse("/dns4/example.com/tcp/443")

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            Multiaddr.parse("/ip4/1.2.3.4/tcp/4001")

    def test_rejects_bad_peer_id(self):
        with pytest.raises(ValueError):
            Multiaddr.parse("/ip4/1.2.3.4/tcp/4001/p2p/zzz")

    def test_mismatched_peer_in_constructor(self, peers):
        peer, other = peers
        from repro.kademlia.messages import PeerInfo

        addr = Multiaddr.direct("1.2.3.4", 4001, peer)
        with pytest.raises(ValueError):
            PeerInfo(peer=other, addrs=(addr,))
