"""K-buckets and the routing table."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ids.keys import common_prefix_len
from repro.ids.peerid import PeerID
from repro.kademlia.routing_table import KBucket, RoutingTable


def make_peers(count, seed=0):
    rng = random.Random(seed)
    return [PeerID.generate(rng) for _ in range(count)]


class TestKBucket:
    def test_capacity_enforced(self):
        bucket = KBucket(capacity=3)
        peers = make_peers(5)
        accepted = [bucket.add(p) for p in peers]
        assert accepted == [True, True, True, False, False]
        assert len(bucket) == 3

    def test_reinsert_refreshes_position(self):
        bucket = KBucket(capacity=3)
        a, b, c = make_peers(3)
        for peer in (a, b, c):
            bucket.add(peer)
        assert bucket.oldest() == a
        assert bucket.add(a)  # already present: moves to freshest
        assert bucket.oldest() == b

    def test_remove(self):
        bucket = KBucket(capacity=2)
        a, b = make_peers(2, seed=1)
        bucket.add(a)
        assert bucket.remove(a)
        assert not bucket.remove(b)
        assert a not in bucket

    def test_oldest_empty(self):
        assert KBucket().oldest() is None


class TestRoutingTable:
    def test_never_stores_owner(self):
        owner = make_peers(1)[0]
        table = RoutingTable(owner)
        assert not table.add(owner)
        assert owner not in table

    def test_bucket_placement_by_prefix(self):
        owner, *others = make_peers(40, seed=2)
        table = RoutingTable(owner)
        for peer in others:
            table.add(peer)
        for peer in table.peers():
            expected = common_prefix_len(owner.dht_key, peer.dht_key)
            assert table.bucket_index_for(peer) == expected
            assert peer in table.bucket(expected)

    def test_far_buckets_fill_first(self):
        """The trie shape of §3: far (low-index) buckets fill completely,
        near buckets stay sparse."""
        owner, *others = make_peers(3000, seed=3)
        table = RoutingTable(owner, bucket_size=20)
        for peer in others:
            table.add(peer)
        fullness = table.fullness()
        # Bucket 0 holds half the keyspace: certainly full.
        assert fullness[0] == 20
        assert fullness[1] == 20
        # Deepest occupied buckets hold few peers.
        deepest = max(fullness)
        assert fullness[deepest] < 20

    def test_full_bucket_rejects(self):
        owner = make_peers(1, seed=4)[0]
        table = RoutingTable(owner, bucket_size=1)
        added = sum(1 for peer in make_peers(200, seed=5) if table.add(peer))
        # With capacity 1 per bucket, at most one peer per prefix length.
        assert added == len(table.nonempty_buckets())

    def test_remove_updates_membership(self):
        owner, peer = make_peers(2, seed=6)
        table = RoutingTable(owner)
        table.add(peer)
        assert table.remove(peer)
        assert peer not in table
        assert not table.remove(peer)
        assert len(table) == 0

    def test_closest_returns_sorted_by_xor(self):
        owner, *others = make_peers(100, seed=7)
        table = RoutingTable(owner)
        for peer in others:
            table.add(peer)
        target = make_peers(1, seed=8)[0].dht_key
        closest = table.closest(target, 10)
        distances = [peer.dht_key ^ target for peer in closest]
        assert distances == sorted(distances)
        # And they are the true closest among stored peers.
        all_distances = sorted(peer.dht_key ^ target for peer in table.peers())
        assert distances == all_distances[:10]

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=1, max_value=30))
    def test_closest_never_exceeds_count(self, seed, count):
        rng = random.Random(seed)
        owner = PeerID.generate(rng)
        table = RoutingTable(owner)
        for _ in range(50):
            table.add(PeerID.generate(rng))
        result = table.closest(rng.getrandbits(256), count)
        assert len(result) == min(count, len(table))
        assert len(set(result)) == len(result)

    def test_max_bucket_index_empty_table(self):
        owner = make_peers(1, seed=9)[0]
        assert RoutingTable(owner).max_bucket_index == 0
