"""End-to-end campaign integration: the paper's findings at smoke scale.

These tests assert the *directional* findings of the paper — orderings,
majorities and divergences — on a complete small campaign.  Exact
magnitudes are the benchmarks' business.
"""

import pytest

from repro.core.counting import CountingMethod
from repro.scenario import report as R
from repro.scenario.config import ScenarioConfig


class TestConfig:
    def test_num_crawls(self):
        assert ScenarioConfig(days=38, crawls_per_day=101 / 38).num_crawls == 101

    def test_presets(self):
        assert ScenarioConfig.smoke().profile.online_servers == 400
        assert ScenarioConfig.paper_scale().profile.online_servers == 25772
        horizon = ScenarioConfig.paper_horizon()
        assert horizon.num_crawls == 101
        assert not horizon.traffic_enabled

    def test_scaled(self):
        assert ScenarioConfig().scaled(5000).profile.online_servers == 5000


class TestCampaignDatasets:
    def test_crawl_count(self, smoke_campaign):
        assert len(smoke_campaign.crawls) == smoke_campaign.config.num_crawls

    def test_logs_populated(self, smoke_campaign):
        assert len(smoke_campaign.hydra) > 1000
        assert len(smoke_campaign.bitswap_monitor) > 1000

    def test_provider_observations_collected(self, smoke_campaign):
        assert len(smoke_campaign.provider_observations) > 50
        with_records = [o for o in smoke_campaign.provider_observations if o.records]
        assert with_records

    def test_gateway_probe_results(self, smoke_campaign):
        reports = smoke_campaign.gateway_probe_reports
        functional = sum(1 for r in reports.values() if r.functional)
        assert len(reports) == 83
        assert functional == 22

    def test_dns_scan_found_adopters(self, smoke_campaign):
        assert len(smoke_campaign.dns_scan.dnslink_records) == 120

    def test_ens_scrape_found_records(self, smoke_campaign):
        assert len(smoke_campaign.ens_scrape.records) == 150
        assert len(smoke_campaign.ens_observations) == 150


class TestPaperFindings:
    """Directional §4-§7 findings."""

    def test_f3_cloud_majority_under_a_n(self, smoke_campaign):
        f3 = R.fig3_report(smoke_campaign)
        assert f3["A-N"]["cloud"] > 0.6
        assert f3["A-N"]["cloud"] > f3["A-N"]["non-cloud"]

    def test_f3_methodologies_diverge(self, smoke_campaign):
        f3 = R.fig3_report(smoke_campaign)
        assert f3["G-IP"]["non-cloud"] > f3["A-N"]["non-cloud"]

    def test_f4_gip_ratio_falls_an_stays(self, smoke_campaign):
        f4 = R.fig4_report(smoke_campaign)
        gip = [ratio for _, ratio in f4["G-IP"]]
        an = [ratio for _, ratio in f4["A-N"]]
        assert gip[-1] < gip[0]
        assert abs(an[-1] - an[0]) / an[0] < 0.5

    def test_f5_choopa_leads(self, smoke_campaign):
        f5 = R.fig5_report(smoke_campaign)
        cloud_only = {
            org: share for org, share in f5["A-N"].items() if org != "non-cloud"
        }
        assert max(cloud_only, key=cloud_only.get) == "choopa"

    def test_f6_us_and_de_lead(self, smoke_campaign):
        f6 = R.fig6_report(smoke_campaign)
        ranked = sorted(f6["A-N"].items(), key=lambda kv: -kv[1])
        assert ranked[0][0] == "US"
        assert ranked[1][0] == "DE"

    def test_f7_in_degree_tail_exceeds_out_band(self, smoke_campaign):
        f7 = R.fig7_report(smoke_campaign)
        assert f7["in_max"] > f7["out_p90"]

    def test_f8_targeted_beats_random(self, smoke_campaign):
        f8 = R.fig8_report(smoke_campaign, repetitions=3)
        assert f8["random_lcc_at_90pct"] > 0.8
        assert f8["targeted_partition_point"] < 0.95

    def test_s5_downloads_and_adverts_dominate(self, smoke_campaign):
        s5 = R.sec5_report(smoke_campaign)
        assert s5["download_share"] > s5["other_share"]
        assert s5["advertisement_share"] > s5["other_share"]

    def test_f9_one_day_cids_form_large_group(self, smoke_campaign):
        """At smoke scale the observation window (4 days) is too short for
        the paper's 1-3-day dominance to emerge cleanly; assert the
        structure instead: a large single-day population exists and
        all-days (persistent platform) CIDs do not dominate."""
        f9 = R.fig9_report(smoke_campaign)
        cid_days = f9["cid_days"]
        total = sum(cid_days.values())
        assert cid_days.get(1, 0) / total > 0.15
        assert cid_days.get(max(cid_days), 0) / total < 0.5

    def test_f10_concentration_beyond_pareto(self, smoke_campaign):
        f10 = R.fig10_report(smoke_campaign)
        assert f10["dht_top5pct_share"] > 0.5  # far beyond uniform

    def test_f10_gateways_bitswap_heavy_dht_light(self, smoke_campaign):
        f10 = R.fig10_report(smoke_campaign)
        assert f10["bitswap_gateway_share"] > f10["dht_gateway_share"]

    def test_f11_cloud_generates_most_dht_traffic(self, smoke_campaign):
        f11 = R.fig11_report(smoke_campaign)
        assert f11["dht_cloud_share"] > 0.5
        assert f11["dht_cloud_share"] > f11["bitswap_cloud_share"]

    def test_f12_volume_exceeds_count_share(self, smoke_campaign):
        f12 = R.fig12_report(smoke_campaign)
        assert f12["overall_cloud_by_volume"] > f12["overall_cloud_by_ip_count"]

    def test_f13_hydra_dominates_downloads(self, smoke_campaign):
        f13 = R.fig13_report(smoke_campaign)
        assert f13["dht_download"].get("hydra", 0) > 0.25

    def test_f13_storage_platforms_dominate_adverts(self, smoke_campaign):
        f13 = R.fig13_report(smoke_campaign)
        adverts = f13["dht_advertisement"]
        assert adverts.get("web3-storage", 0) + adverts.get("nft-storage", 0) > 0.25

    def test_f14_nat_significant_and_relays_cloudy(self, smoke_campaign):
        f14 = R.fig14_report(smoke_campaign)
        assert f14["class_shares"].get("nat-ed", 0) > 0.15
        assert f14["relay_cloud_share"] > 0.6

    def test_f16_cloud_reliance(self, smoke_campaign):
        f16 = R.fig16_report(smoke_campaign)
        assert f16["at_least_one_cloud"] > 0.8
        assert f16["majority_cloud"] <= f16["at_least_one_cloud"]
        assert f16["cloud_only"] <= f16["majority_cloud"]

    def test_f17_cloudflare_leads_dnslink(self, smoke_campaign):
        f17 = R.fig17_report(smoke_campaign)
        assert f17["cloudflare_share"] > 0.3
        assert 0 < f17["public_gateway_ip_share"] < 1

    def test_f18_cloudflare_heavy_both_sides(self, smoke_campaign):
        f18 = R.fig18_19_report(smoke_campaign)
        assert f18["frontend_provider_shares"].get("cloudflare", 0) > 0.3
        assert f18["overlay_provider_shares"].get("cloudflare", 0) > 0.2
        assert f18["num_listed_endpoints"] == 83
        assert f18["num_functional_endpoints"] == 22

    def test_f19_us_de_majority(self, smoke_campaign):
        f18 = R.fig18_19_report(smoke_campaign)
        geo = f18["overlay_country_shares"]
        assert geo.get("US", 0) + geo.get("DE", 0) > 0.5

    def test_f20_ens_content_cloudy(self, smoke_campaign):
        f20 = R.fig20_report(smoke_campaign)
        assert f20["cloud_share"] > 0.5
        assert f20["num_provider_records"] > 0

    def test_full_report_bundles_everything(self, smoke_campaign):
        bundle = R.full_report(smoke_campaign, resilience_reps=2)
        expected = {
            "crawl_stats", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "sec5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18_19", "fig20",
        }
        assert set(bundle) == expected
