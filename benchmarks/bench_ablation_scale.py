"""Ablation — scale invariance of the share-level results.

DESIGN.md claims the reported quantities are shares and approximately
scale-invariant, which is what lets the bench campaigns run at a
fraction of the paper's 25.8 k servers.  Verify it: the A-N cloud share
and the top-provider ranking barely move across a 4× size sweep.
"""

from repro.scenario import report as R
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile

from _bench_utils import show

# n=300 is deliberately excluded: the real-world-fixed infrastructure
# (119 gateway nodes + platform fleets) is a third of such a tiny network
# and visibly dilutes the provider shares — the bias vanishes by n≈600.
SIZES = (600, 1200, 2400)


def _crawl_only(servers: int):
    return run_campaign(
        ScenarioConfig(
            profile=WorldProfile(online_servers=servers),
            days=3,
            traffic_enabled=False,
            daily_cid_sample=0,
            provider_fetch_days=0,
            gateway_probes_per_endpoint=2,
        )
    )


def test_ablation_scale_invariance(benchmark):
    def sweep():
        results = {}
        for servers in SIZES:
            campaign = _crawl_only(servers)
            f3 = R.fig3_report(campaign)
            f5 = R.fig5_report(campaign)
            results[servers] = {
                "cloud": f3["A-N"].get("cloud", 0.0),
                "choopa": f5["an_choopa"],
                "top3": f5["an_top3_share"],
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for servers in SIZES:
        rows.append((f"A-N cloud share @ n={servers}", results[servers]["cloud"], 0.796))
        rows.append((f"choopa share @ n={servers}", results[servers]["choopa"], 0.293))
    show("Ablation — scale invariance (crawl-only campaigns)", rows)
    cloud_shares = [results[s]["cloud"] for s in SIZES]
    choopa_shares = [results[s]["choopa"] for s in SIZES]
    assert max(cloud_shares) - min(cloud_shares) < 0.06
    assert max(choopa_shares) - min(choopa_shares) < 0.06
    for servers in SIZES:
        assert results[servers]["top3"] > 0.42
