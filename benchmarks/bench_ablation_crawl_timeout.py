"""Ablation — crawl connection timeout vs completeness.

§3 (citing Stutzbach & Rejaie): short crawls capture accurate snapshots,
but long connection timeouts are needed for completeness.  Sweeping the
timeout shows the completeness/duration trade-off.
"""

import random

from repro.core.crawler import DHTCrawler

from _bench_utils import show

TIMEOUTS = (0.1, 1.0, 10.0, 180.0)


def test_ablation_crawl_timeout(benchmark, campaign):
    overlay = campaign.overlay

    def sweep():
        results = {}
        for timeout in TIMEOUTS:
            crawler = DHTCrawler(overlay, timeout=timeout, rng=random.Random(7))
            snapshot = crawler.crawl(0)
            results[timeout] = (
                snapshot.num_crawlable / max(snapshot.num_discovered, 1),
                snapshot.duration,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for timeout in TIMEOUTS:
        crawlable, duration = results[timeout]
        rows.append((f"crawlable fraction @ {timeout:>5}s timeout", crawlable, 0.70))
        rows.append((f"crawl duration     @ {timeout:>5}s timeout", duration, 300.0))
    show("Ablation — crawl timeout vs completeness", rows)
    fractions = [results[t][0] for t in TIMEOUTS]
    durations = [results[t][1] for t in TIMEOUTS]
    # Completeness grows monotonically with patience …
    assert fractions == sorted(fractions)
    assert fractions[-1] > fractions[0] + 0.1
    # … and so does the wall-clock cost.
    assert durations[-1] > durations[0]
