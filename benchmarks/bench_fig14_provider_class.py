"""F14 — Fig. 14: classification of content providers and their relays."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig14_provider_classification(benchmark, campaign, paper):
    f14 = benchmark(R.fig14_report, campaign)
    shares = f14["class_shares"]
    show(
        "Fig. 14 — provider classification (unique peers, reachable)",
        [
            ("NAT-ed", shares.get("nat-ed", 0.0), paper.provider_nat_share),
            ("cloud", shares.get("cloud", 0.0), paper.provider_cloud_share),
            ("non-cloud", shares.get("non-cloud", 0.0), paper.provider_noncloud_share),
            ("hybrid", shares.get("hybrid", 0.0), paper.provider_hybrid_share),
            ("relays in cloud", f14["relay_cloud_share"], paper.nat_relay_cloud_share),
        ],
    )
    # Cloud peers are the largest class; NAT-ed a significant second.
    assert shares.get("cloud", 0) == max(shares.values())
    assert abs(shares.get("nat-ed", 0) - paper.provider_nat_share) < 0.12
    assert abs(shares.get("cloud", 0) - paper.provider_cloud_share) < 0.12
    assert shares.get("hybrid", 0) < 0.05
    # The large majority of NAT-ed providers relay through cloud nodes.
    assert f14["relay_cloud_share"] > 0.7
    assert f14["total_providers"] > 100
