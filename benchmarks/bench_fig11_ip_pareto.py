"""F11 — Fig. 11: DHT/Bitswap IP simplified Pareto chart.

The paper: the top 5 % of IPs carry ≈94 % of messages; cloud IPs
generate ≈85 % of the DHT traffic but only ≈42 % of Bitswap traffic.
"""

from repro.scenario import report as R

from _bench_utils import show


def test_fig11_ip_pareto(benchmark, campaign, paper):
    f11 = benchmark(R.fig11_report, campaign)
    show(
        "Fig. 11 — IP concentration",
        [
            ("DHT top-5% share", f11["dht_top5pct_share"], paper.top5pct_ip_traffic_share),
            ("cloud share of DHT traffic", f11["dht_cloud_share"], paper.cloud_dht_traffic_share),
            ("cloud share of Bitswap traffic", f11["bitswap_cloud_share"], paper.cloud_bitswap_traffic_share),
        ],
    )
    assert f11["dht_top5pct_share"] > 0.6
    # Cloud dominates DHT traffic; Bitswap is far more balanced.
    assert f11["dht_cloud_share"] > 0.6
    assert f11["dht_cloud_share"] > f11["bitswap_cloud_share"] + 0.1
    # The Bitswap cloud share carries high seed variance at bench scale:
    # the lognormal activity tail lets a couple of heavy requesters swing
    # it by ±0.1; the structural gap above is the load-bearing check.
    assert abs(f11["bitswap_cloud_share"] - paper.cloud_bitswap_traffic_share) < 0.25
