#!/usr/bin/env python
"""Perf-regression harness for the simulation-core hot paths.

Times the operations that dominate campaign wall-clock — relay selection,
iterative lookup walks, oracle closest-k queries, network-wide refresh
passes and a miniature end-to-end campaign — and writes a
machine-readable report (``BENCH_core_hotpaths.json``) with
hardware-normalized costs (see :mod:`_bench_utils`).

For the paths with an obvious naive implementation (relay selection,
lookup walk, closest-k) the script also runs an in-process *reference*
implementation — the O(N)-scan / full-re-sort code the indexed versions
replaced — asserts result equality, and reports the speedup.  Speedups
are ratios of two timings on the same host, so they are directly
comparable across machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_core_hotpaths.py            # run, write JSON
    PYTHONPATH=src python benchmarks/bench_core_hotpaths.py \
        --check BENCH_core_hotpaths.json                               # CI regression gate

``--check`` exits non-zero only when a benchmark's normalized cost grew
by more than ``--tolerance`` (default 3x) over the committed baseline —
a gross-regression gate, deliberately insensitive to runner noise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Optional, Sequence, Set

if __package__ in (None, ""):
    _repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for entry in (os.path.join(_repo_root, "src"), os.path.dirname(os.path.abspath(__file__))):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from _bench_utils import BenchReport, best_of, compare_to_baseline

from repro.ids.peerid import PeerID
from repro.kademlia.lookup import iterative_find_node
from repro.kademlia.messages import PeerInfo
from repro.netsim.network import Overlay
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.population import build_world
from repro.world.profiles import WorldProfile

#: Overlay size for the microbenchmarks (servers online at bootstrap).
MICRO_SERVERS = 600
MICRO_SEED = 5

#: Tiny but complete campaign for the end-to-end tick-loop benchmark.
E2E_SERVERS = 150
E2E_SEED = 77


# ---------------------------------------------------------------------------
# reference implementations (the code the indexed hot paths replaced)
# ---------------------------------------------------------------------------


def reference_pick_relay(overlay: Overlay, exclude=None):
    """The O(N) relay scan: filter the whole online registry per call."""
    servers = [
        node
        for node in overlay.online_by_peer.values()
        if node.is_dht_server and node is not exclude and overlay._is_relay_capable(node)
    ]
    if not servers:
        return None
    return overlay.rng.choice(servers)


def reference_oracle_closest(overlay: Overlay, target: int, count: int) -> List[PeerID]:
    """Brute force: full XOR sort over every online server."""
    peers = overlay.oracle.peers()
    peers.sort(key=lambda peer: peer.dht_key ^ target)
    return peers[:count]


class ReferenceWalk:
    """The pre-index ``_Walk``: full re-sort of the known pool per round."""

    def __init__(self, target_key: int, start: Sequence[PeerInfo], k: int, alpha: int) -> None:
        self.target_key = target_key
        self.k = k
        self.alpha = alpha
        self.known: Dict[PeerID, PeerInfo] = {}
        self.queried: Set[PeerID] = set()
        self.failed: Set[PeerID] = set()
        self.contacted: List[PeerID] = []
        self.messages = 0
        for info in start:
            self.known.setdefault(info.peer, info)

    def candidates(self) -> List[PeerInfo]:
        pool = [info for peer, info in self.known.items() if peer not in self.failed]
        pool.sort(key=lambda info: info.peer.dht_key ^ self.target_key)
        return pool

    def next_batch(self) -> List[PeerInfo]:
        frontier = [
            info for info in self.candidates()[: self.k] if info.peer not in self.queried
        ]
        return frontier[: self.alpha]

    def absorb(self, closer_peers: Sequence[PeerInfo]) -> None:
        for info in closer_peers:
            self.known.setdefault(info.peer, info)

    def closest_live(self) -> List[PeerInfo]:
        live = [info for info in self.candidates() if info.peer in self.queried]
        return live[: self.k]


def reference_find_node_query(overlay: Overlay, timeout: float = 180.0):
    """The pre-index FIND_NODE handler: full XOR sort of the whole
    routing table per query (today's handler answers via the sorted key
    index; see ``RoutingTable.closest``)."""

    def query(peer, target_key):
        node = overlay.dial(peer, timeout)
        if node is None:
            return None
        table = node.routing_table
        if table is None:
            return []
        peers = sorted(table.peers(), key=lambda p: p.dht_key ^ target_key)
        return overlay.peer_infos(peers[: overlay.k])

    return query


def reference_find_node(target_key, start, query, k=20, alpha=3, max_queries=500):
    walk = ReferenceWalk(target_key, start, k, alpha)
    while walk.messages < max_queries:
        batch = walk.next_batch()
        if not batch:
            break
        for info in batch:
            if walk.messages >= max_queries:
                break
            walk.queried.add(info.peer)
            walk.messages += 1
            response = query(info.peer, target_key)
            if response is None:
                walk.failed.add(info.peer)
                continue
            walk.contacted.append(info.peer)
            walk.absorb(response)
    return walk


# ---------------------------------------------------------------------------
# benchmark stages
# ---------------------------------------------------------------------------


def build_micro_overlay() -> Overlay:
    world = build_world(WorldProfile(online_servers=MICRO_SERVERS, seed=MICRO_SEED))
    overlay = Overlay(world)
    overlay.bootstrap()
    return overlay


def bench_relay_selection(report: BenchReport, overlay: Overlay, calls: int = 2000) -> None:
    overlay.pick_relay()  # drain capability sampling outside the timed region

    # Result equality: same RNG state in, same relay out.
    state = overlay.rng.getstate()
    picked_new = overlay.pick_relay()
    overlay.rng.setstate(state)
    picked_reference = reference_pick_relay(overlay)
    assert picked_new is picked_reference, "indexed pick_relay diverged from the scan"
    overlay.rng.setstate(state)

    seconds = best_of(lambda: [overlay.pick_relay() for _ in range(calls)])
    reference_seconds = best_of(
        lambda: [reference_pick_relay(overlay) for _ in range(calls)]
    )
    report.record("relay_selection", seconds, calls)
    report.record("relay_selection_reference", reference_seconds, calls)
    report.record_speedup("relay_selection", reference_seconds, seconds)


def bench_lookup_walk(report: BenchReport, overlay: Overlay, walks: int = 300) -> None:
    rng = random.Random(99)
    servers = overlay.online_servers()
    query = overlay.find_node_query()
    reference_query = reference_find_node_query(overlay)
    jobs = []
    for _ in range(walks):
        origin = rng.choice(servers)
        target = rng.getrandbits(256)
        start = overlay.peer_infos(origin.routing_table.closest(target, overlay.k))
        jobs.append((target, start))

    # Result equality on a sample of walks (queries are read-only and
    # RNG-free; the reference stack returns bit-identical responses, so
    # the two walks must trace identical paths).
    for target, start in jobs[:50]:
        new = iterative_find_node(target, start, query, k=overlay.k)
        old = reference_find_node(target, start, reference_query, k=overlay.k)
        assert [info.peer for info in new.closest] == [
            info.peer for info in old.closest_live()
        ], "frontier walk diverged from the full-sort walk"
        assert new.contacted == old.contacted and new.messages == old.messages

    # New stack (frontier walk + indexed FIND_NODE handlers) vs the
    # pre-index stack (full-sort walk + full-sort handlers).
    seconds = best_of(
        lambda: [iterative_find_node(t, s, query, k=overlay.k) for t, s in jobs]
    )
    reference_seconds = best_of(
        lambda: [reference_find_node(t, s, reference_query, k=overlay.k) for t, s in jobs]
    )
    report.record("lookup_walk", seconds, walks)
    report.record("lookup_walk_reference", reference_seconds, walks)
    report.record_speedup("lookup_walk", reference_seconds, seconds)


def bench_oracle_closest(report: BenchReport, overlay: Overlay, calls: int = 2000) -> None:
    rng = random.Random(123)
    targets = [rng.getrandbits(256) for _ in range(calls)]
    for target in targets[:100]:
        assert overlay.oracle.closest(target, overlay.k) == reference_oracle_closest(
            overlay, target, overlay.k
        ), "aligned-range closest diverged from brute force"
    seconds = best_of(
        lambda: [overlay.oracle.closest(t, overlay.k) for t in targets]
    )
    reference_seconds = best_of(
        lambda: [reference_oracle_closest(overlay, t, overlay.k) for t in targets]
    )
    report.record("oracle_closest", seconds, calls)
    report.record("oracle_closest_reference", reference_seconds, calls)
    report.record_speedup("oracle_closest", reference_seconds, seconds)


def bench_refresh_passes(report: BenchReport, overlay: Overlay, passes: int = 5) -> None:
    # Quiesce: after two full passes with no churn, most nodes' refreshes
    # are provable no-ops, which is the steady state the skip exploits.
    overlay.refresh_all()
    overlay.refresh_all()

    def quiescent_passes():
        for _ in range(passes):
            overlay.refresh_all()

    seconds = best_of(quiescent_passes)
    overlay.refresh_skip_enabled = False
    reference_seconds = best_of(quiescent_passes)
    overlay.refresh_skip_enabled = True

    report.record("refresh_all_quiescent", seconds, passes)
    report.record("refresh_all_no_skip", reference_seconds, passes)
    report.record_speedup("refresh_all_quiescent", reference_seconds, seconds)


def bench_end_to_end(report: BenchReport) -> None:
    config = ScenarioConfig(
        profile=WorldProfile(online_servers=E2E_SERVERS, seed=E2E_SEED),
        days=1,
        daily_cid_sample=50,
        provider_fetch_days=1,
    )
    start = time.perf_counter()
    run_campaign(config)
    seconds = time.perf_counter() - start
    report.record("campaign_tick_loop", seconds)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def run(out_path: Optional[str]) -> dict:
    report = BenchReport()
    print(f"calibration: {report.calibration:.4f}s\n")

    print("building micro overlay "
          f"({MICRO_SERVERS} target servers, seed {MICRO_SEED})...")
    overlay = build_micro_overlay()
    print(f"overlay ready: {len(overlay.online_servers())} online servers\n")

    bench_relay_selection(report, overlay)
    bench_lookup_walk(report, overlay)
    bench_oracle_closest(report, overlay)
    bench_refresh_passes(report, overlay)
    bench_end_to_end(report)

    if out_path:
        report.write(out_path)
    return report.payload()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_core_hotpaths.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="compare against a committed baseline; exit 1 on gross regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed growth factor of normalized cost before failing --check",
    )
    options = parser.parse_args(argv)

    current = run(options.out)

    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        regressions = compare_to_baseline(current, baseline, options.tolerance)
        if regressions:
            print(f"\nPERF REGRESSION (> {options.tolerance:.1f}x normalized cost):")
            for name, before, after in regressions:
                print(f"  {name}: {before:.2f}x cal -> {after:.2f}x cal")
            return 1
        print(f"\nperf check OK (tolerance {options.tolerance:.1f}x, "
              f"{len(baseline.get('benchmarks', {}))} baseline entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
