"""Ablation — directed vs undirected resilience graphs.

§4 caveat: the paper simplifies the graph to be undirected, which lets
Bitswap use every edge but ignores edge direction.  Comparing the
undirected interpretation against the strongly-connected view of the
directed graph bounds the effect of that simplification.
"""

import random

import networkx as nx

from repro.core import topology
from repro.core.resilience import targeted_removal

from _bench_utils import show


def _directed_core_share(digraph) -> float:
    """Share of nodes inside the largest strongly connected component."""
    if digraph.number_of_nodes() == 0:
        return 0.0
    largest = max((len(c) for c in nx.strongly_connected_components(digraph)), default=0)
    return largest / digraph.number_of_nodes()


def test_ablation_directed_vs_undirected(benchmark, campaign):
    snapshot = campaign.crawls.snapshots[-1]

    def compare():
        digraph = topology.build_digraph(snapshot)
        undirected = topology.build_undirected(snapshot)
        undirected_lcc = max(
            (len(c) for c in nx.connected_components(undirected)), default=0
        ) / undirected.number_of_nodes()
        return {
            "scc_share": _directed_core_share(digraph),
            "undirected_lcc": undirected_lcc,
            "partition_point": targeted_removal(undirected).partition_point(),
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    show(
        "Ablation — directed vs undirected graph",
        [
            ("largest SCC share (directed)", results["scc_share"], float("nan")),
            ("LCC share (undirected)", results["undirected_lcc"], 1.0),
            ("targeted partition point (undirected)", results["partition_point"], 0.60),
        ],
    )
    # The undirected view is (weakly) more connected by construction: the
    # uncrawlable leaves have no out-edges, so they sit outside the SCC.
    assert results["undirected_lcc"] >= results["scc_share"]
    # The directed core still spans the crawlable network.
    crawlable_share = snapshot.num_crawlable / snapshot.num_discovered
    assert results["scc_share"] > 0.8 * crawlable_share
