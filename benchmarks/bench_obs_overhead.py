#!/usr/bin/env python
"""Overhead harness for the tracing layer (``repro.obs.trace``).

Measures what tracing costs at each class of instrumentation site, in
both states that matter:

* **null path** (tracing off, the default) — the dispatch helpers hit
  the shared :data:`~repro.obs.trace.NULL_TRACER`, so every site must
  stay in no-op territory; this is what keeps tracing-off campaigns
  inside the perf-smoke budget.
* **tracing on** — a collecting :class:`~repro.obs.trace.Tracer` with a
  ring buffer; the interesting number is the slowdown factor per site
  (span pairs, guarded instants) and end-to-end (lookup walks, crawl
  tasks).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py             # run, write JSON
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --check BENCH_obs_overhead.json                                # CI regression gate

``--check`` compares hardware-normalized costs against the committed
baseline and exits non-zero on a gross (default 3x) regression — same
contract as ``bench_core_hotpaths.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import List, Optional

if __package__ in (None, ""):
    _repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for entry in (os.path.join(_repo_root, "src"), os.path.dirname(os.path.abspath(__file__))):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from _bench_utils import BenchReport, best_of, compare_to_baseline

from repro.core.crawler import DHTCrawler, execute_crawl_task, execute_crawl_task_traced
from repro.kademlia.lookup import iterative_find_node
from repro.netsim.network import Overlay
from repro.obs import trace
from repro.obs.trace import Tracer, use_tracer
from repro.world.population import build_world
from repro.world.profiles import WorldProfile

#: Overlay size for the walk/crawl measurements.
SERVERS = 400
SEED = 7


def build_overlay() -> Overlay:
    world = build_world(WorldProfile(online_servers=SERVERS, seed=SEED))
    overlay = Overlay(world)
    overlay.bootstrap()
    return overlay


def bench_instrumentation_sites(report: BenchReport, calls: int = 100_000) -> None:
    """The per-site primitives, null versus collecting.

    ``guarded_instant_null`` is the exact pattern the hot paths use
    (``if get_tracer().enabled:`` before building the attrs dict): with
    tracing off it must cost no more than a global read and an attribute
    check per event.
    """

    def guarded_instants():
        for index in range(calls):
            if trace.get_tracer().enabled:
                trace.trace_event("bench.instant", index=index)

    def span_pairs():
        for _ in range(calls):
            with trace.trace_span("bench.span"):
                pass

    trace.disable_tracing()
    report.record("guarded_instant_null", best_of(guarded_instants), calls)
    null_span_seconds = best_of(span_pairs)
    report.record("span_pair_null", null_span_seconds, calls)

    # Collecting tracer: ring buffer bounded far below `calls` so steady
    # state includes eviction (the worst case, not the warm-up).
    with use_tracer(Tracer(origin="bench", capacity=8192)):
        report.record("guarded_instant_traced", best_of(guarded_instants), calls)
        traced_span_seconds = best_of(span_pairs)
        report.record("span_pair_traced", traced_span_seconds, calls)
    report.record_speedup("span_pair_null_vs_traced", traced_span_seconds, null_span_seconds)

    with use_tracer(Tracer(origin="bench", capacity=8192, sample=16)):
        report.record("span_pair_sampled_1_in_16", best_of(span_pairs), calls)
    trace.disable_tracing()


def bench_lookup_walks(report: BenchReport, overlay: Overlay, walks: int = 200) -> None:
    """End-to-end lookup walks, the chattiest traced code path."""
    rng = random.Random(42)
    servers = overlay.online_servers()
    query = overlay.find_node_query()
    jobs = []
    for _ in range(walks):
        origin = rng.choice(servers)
        target = rng.getrandbits(256)
        start = overlay.peer_infos(origin.routing_table.closest(target, overlay.k))
        jobs.append((target, start))

    def run_walks():
        for target, start in jobs:
            iterative_find_node(target, start, query, k=overlay.k)

    trace.disable_tracing()
    off_seconds = best_of(run_walks)
    report.record("lookup_walk_off", off_seconds, walks)
    with use_tracer(Tracer(origin="bench", capacity=1 << 18)):
        on_seconds = best_of(run_walks)
    report.record("lookup_walk_traced", on_seconds, walks)
    report.record_speedup("lookup_walk_off_vs_traced", on_seconds, off_seconds)
    trace.disable_tracing()


def bench_crawl_tasks(report: BenchReport, overlay: Overlay, crawls: int = 2) -> None:
    """Whole crawl tasks: the plain pure function versus the traced
    wrapper (per-task tracer + registry, the workers' configuration)."""
    crawler = DHTCrawler(overlay)
    tasks = [crawler.task(crawl_id) for crawl_id in range(crawls)]

    off_seconds = best_of(lambda: [execute_crawl_task(task) for task in tasks])
    report.record("crawl_task_off", off_seconds, crawls)
    traced_seconds = best_of(
        lambda: [execute_crawl_task_traced(task, 1, 1 << 18) for task in tasks]
    )
    report.record("crawl_task_traced", traced_seconds, crawls)
    report.record_speedup("crawl_task_off_vs_traced", traced_seconds, off_seconds)


def run(out_path: Optional[str]) -> dict:
    report = BenchReport()
    print(f"calibration: {report.calibration:.4f}s\n")

    bench_instrumentation_sites(report)

    print(f"\nbuilding overlay ({SERVERS} target servers, seed {SEED})...")
    overlay = build_overlay()
    print(f"overlay ready: {len(overlay.online_servers())} online servers\n")

    bench_lookup_walks(report, overlay)
    bench_crawl_tasks(report, overlay)

    if out_path:
        report.write(out_path)
    return report.payload()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_obs_overhead.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="compare against a committed baseline; exit 1 on gross regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed growth factor of normalized cost before failing --check",
    )
    options = parser.parse_args(argv)

    current = run(options.out)

    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        regressions = compare_to_baseline(current, baseline, options.tolerance)
        if regressions:
            print(f"\nPERF REGRESSION (> {options.tolerance:.1f}x normalized cost):")
            for name, before, after in regressions:
                print(f"  {name}: {before:.2f}x cal -> {after:.2f}x cal")
            return 1
        print(f"\nperf check OK (tolerance {options.tolerance:.1f}x, "
              f"{len(baseline.get('benchmarks', {}))} baseline entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
