"""Ablation — passive churn measurement, split by cloud status.

§4 explains the counting divergence by non-cloud nodes being short-lived
with frequently changing IPs.  The churn analysis measures exactly that
from the crawl snapshots: per-peer uptime, session structure and
inter-crawl IP stability for cloud vs non-cloud peers.
"""

from repro.core.churn_analysis import churn_by_label

from _bench_utils import show


def test_ablation_churn_split_by_cloud_status(benchmark, campaign):
    cloud_db = campaign.world.cloud_db

    def run():
        return churn_by_label(
            campaign.crawls,
            lambda ip: "cloud" if cloud_db.is_cloud(ip) else "non-cloud",
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    cloud = reports["cloud"]
    fringe = reports["non-cloud"]
    show(
        "Ablation — churn by cloud status (from crawl snapshots)",
        [
            ("cloud peers", float(cloud.peers), float("nan")),
            ("non-cloud peers", float(fringe.peers), float("nan")),
            ("cloud mean uptime", cloud.mean_uptime, float("nan")),
            ("non-cloud mean uptime", fringe.mean_uptime, float("nan")),
            ("cloud IP-change rate", cloud.ip_change_rate, float("nan")),
            ("non-cloud IP-change rate", fringe.ip_change_rate, float("nan")),
            ("non-cloud single-appearance share", fringe.single_appearance_share, float("nan")),
        ],
    )
    # The §4 mechanism, measured: the fringe is short-lived and rotates.
    assert cloud.mean_uptime > fringe.mean_uptime + 0.25
    assert fringe.ip_change_rate > 3 * cloud.ip_change_rate
    assert fringe.single_appearance_share > cloud.single_appearance_share
