"""Extension — §9: the IPv6 what-if.

"In the long run, the wider deployment of IPv6, and thus the removal of
IPv4 NAT, seems like a more sustainable solution."  Sweeping the
adoption knob shows what the DHT server set and the relay dependence
would look like as NAT disappears.
"""

import pytest

from repro.world.population import NodeClass, build_world
from repro.world.profiles import WorldProfile

from _bench_utils import show

ADOPTION_LEVELS = (0.0, 0.3, 0.7, 1.0)


def _world_metrics(adoption):
    world = build_world(WorldProfile(online_servers=400, seed=13, ipv6_adoption=adoption))
    expected_online = sum(spec.behavior.uptime for spec in world.server_specs)
    cloud_online = sum(
        spec.behavior.uptime for spec in world.server_specs if spec.is_cloud_hosted
    )
    return {
        "nat_clients": len(world.nat_specs),
        "expected_online_servers": expected_online,
        "cloud_share": cloud_online / expected_online,
    }


def test_ext_ipv6_adoption_sweep(benchmark):
    sweep = benchmark.pedantic(
        lambda: {level: _world_metrics(level) for level in ADOPTION_LEVELS},
        rounds=1,
        iterations=1,
    )
    rows = []
    for level in ADOPTION_LEVELS:
        metrics = sweep[level]
        rows.append((f"NAT clients @ adoption {level}", float(metrics["nat_clients"]), float("nan")))
        rows.append((f"cloud share of servers @ {level}", metrics["cloud_share"], float("nan")))
    show("Extension — IPv6 adoption sweep", rows)
    # NAT population shrinks monotonically to zero …
    nat_counts = [sweep[level]["nat_clients"] for level in ADOPTION_LEVELS]
    assert nat_counts == sorted(nat_counts, reverse=True)
    assert nat_counts[-1] == 0
    # … the DHT grows …
    online = [sweep[level]["expected_online_servers"] for level in ADOPTION_LEVELS]
    assert online == sorted(online)
    # … and the cloud share of the server set falls substantially: the
    # paper's argument that NAT is a centralization pressure.
    assert sweep[1.0]["cloud_share"] < sweep[0.0]["cloud_share"] - 0.2
