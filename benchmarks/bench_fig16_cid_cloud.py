"""F16 — Fig. 16: CIDs classified by their providers' cloud share."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig16_cid_cloud_reliance(benchmark, campaign, paper):
    f16 = benchmark(R.fig16_report, campaign)
    show(
        "Fig. 16 — per-CID cloud reliance",
        [
            (">=1 cloud provider", f16["at_least_one_cloud"], paper.cid_at_least_one_cloud),
            (">=half cloud providers", f16["majority_cloud"], paper.cid_majority_cloud),
            ("cloud-only", f16["cloud_only"], paper.cid_cloud_only),
            (">=1 non-cloud provider", f16["at_least_one_noncloud"], paper.cid_at_least_one_noncloud),
        ],
    )
    # Content hosting is heavily cloud-reliant …
    assert f16["at_least_one_cloud"] > 0.85
    assert f16["majority_cloud"] > 0.7
    # … while a clear majority of content keeps at least one non-cloud leg
    # (our short record-TTL window over-prunes offline co-providers, so
    # cloud-only lands above the paper's 23 %; see EXPERIMENTS.md).
    assert f16["at_least_one_noncloud"] > 0.3
    # Internal consistency of the three aggregates.
    assert f16["cloud_only"] <= f16["majority_cloud"] <= f16["at_least_one_cloud"]
    assert f16["at_least_one_noncloud"] == 1.0 - f16["cloud_only"]
    assert f16["total_cids"] > 200
