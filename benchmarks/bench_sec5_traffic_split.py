"""S5 — §5 headline: message-class split and the Hydra capture rate."""

from repro.scenario import report as R

from _bench_utils import show


def test_sec5_traffic_split(benchmark, campaign, paper):
    s5 = benchmark(R.sec5_report, campaign)
    show(
        "§5 — traffic split (Hydra log)",
        [
            ("download share", s5["download_share"], paper.download_share),
            ("advertisement share", s5["advertisement_share"], paper.advertisement_share),
            ("other share", s5["other_share"], paper.other_share),
            ("per-message capture × 50 contacts",
             s5["capture_probability_per_message"] * 50, paper.hydra_capture_rate),
        ],
    )
    assert abs(s5["download_share"] - paper.download_share) < 0.10
    assert abs(s5["advertisement_share"] - paper.advertisement_share) < 0.10
    assert s5["other_share"] < 0.10
    assert s5["total_messages"] > 10_000
