#!/usr/bin/env python
"""Scaling benchmark for the struct-of-arrays tick engine.

Measures tick-engine throughput — **node·ticks per second** — at 10 k,
50 k and 100 k online servers, in the two regimes the adaptive gate
distinguishes:

* **busy** (6-hour ticks, the campaign default): most nodes emit events
  every tick, the gate picks scalar dispatch over precomputed rate
  arrays, and event generation dominates.
* **quiet** (36-simulated-second ticks, the fine-grained sweep regime
  the roadmap targets): nearly every node is silent, the gate picks the
  batched silence classifier, and the SoA engine's advantage is largest.

At the smallest size the scalar engine runs the same workload, the
monitor logs are asserted bit-identical (the parity contract of
``tests/test_tick_parity.py``, re-checked here at benchmark scale) and
the speedup is recorded.  At the larger sizes the scalar engine is
skipped — its cost is what this module exists to avoid.

Usage::

    PYTHONPATH=src python benchmarks/bench_tick_engine.py                  # full run
    PYTHONPATH=src python benchmarks/bench_tick_engine.py \
        --sizes 10000 --check BENCH_tick_engine.json                       # CI gate
    PYTHONPATH=src python benchmarks/bench_tick_engine.py \
        --sizes 100000 --quiet-ticks 4 --busy-ticks 1 --skip-parity --out "" # smoke

``--check`` compares hardware-normalized costs against the committed
baseline and exits non-zero on a > ``--tolerance`` (default 3x) gross
regression; only sizes present in both runs are compared.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional

if __package__ in (None, ""):
    _repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for entry in (os.path.join(_repo_root, "src"), os.path.dirname(os.path.abspath(__file__))):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from _bench_utils import BenchReport, compare_to_baseline

from repro.content.catalog import ContentCatalog
from repro.workload import TrafficEngine, VectorizedTrafficEngine
from repro.monitors.bitswap_monitor import BitswapMonitor
from repro.monitors.hydra import HydraBooster
from repro.netsim.network import Overlay
from repro.netsim.soa import require_numpy
from repro.world.population import build_world
from repro.world.profiles import WorldProfile

SEED = 23

#: (regime name, hours per tick) — see the module docstring.  The quiet
#: tick is 36 simulated seconds: short enough that the expected silent
#: share clears the adaptive gate and the batched classifier engages.
REGIMES = (("busy", 6.0), ("quiet", 0.01))


def build_stack(servers: int, vectorized: bool):
    """World + bootstrapped overlay + traffic engine at the given scale."""
    world = build_world(WorldProfile(online_servers=servers, seed=SEED))
    overlay = Overlay(world, vectorized=vectorized)
    overlay.bootstrap()
    engine_cls = VectorizedTrafficEngine if vectorized else TrafficEngine
    engine = engine_cls(
        overlay,
        ContentCatalog(random.Random(SEED + 1)),
        HydraBooster(num_heads=2),
        BitswapMonitor(random.Random(SEED + 2)),
        None,
        random.Random(SEED + 3),
    )
    engine.seed_platform_content()
    return engine


def run_ticks(engine, hours: float, ticks: int) -> float:
    """Drive ``ticks`` engine ticks; returns wall-clock seconds."""
    scheduler = engine.overlay.scheduler
    step = hours * 3600.0
    start = time.perf_counter()
    for _ in range(ticks):
        scheduler.run_until(scheduler.clock.now + step)
        engine.run_tick(hours)
    return time.perf_counter() - start


def online_count(engine) -> int:
    return len(engine.overlay.online_by_peer)


def bench_size(
    report: BenchReport,
    servers: int,
    quiet_ticks: int,
    busy_ticks: int,
    with_parity: bool,
) -> None:
    tick_plan = {"busy": busy_ticks, "quiet": quiet_ticks}

    print(f"\n--- {servers} servers ---")
    built = time.perf_counter()
    soa = build_stack(servers, vectorized=True)
    print(
        f"bootstrap: {time.perf_counter() - built:.1f}s "
        f"({online_count(soa)} nodes online)"
    )
    scalar = build_stack(servers, vectorized=False) if with_parity else None

    for regime, hours in REGIMES:
        ticks = tick_plan[regime]
        if ticks <= 0:
            continue
        node_ticks = online_count(soa) * ticks
        seconds = run_ticks(soa, hours, ticks)
        report.record(f"tick_{regime}_soa_{servers}", seconds, node_ticks)
        print(
            f"  {regime:<5} soa    {node_ticks / seconds:12,.0f} node·ticks/s"
        )
        if scalar is not None:
            reference = run_ticks(scalar, hours, ticks)
            report.record(f"tick_{regime}_scalar_{servers}", reference, node_ticks)
            report.record_speedup(f"tick_{regime}_{servers}", reference, seconds)
            print(
                f"  {regime:<5} scalar {node_ticks / reference:12,.0f} node·ticks/s"
            )

    if scalar is not None:
        # The parity contract, re-checked at benchmark scale: identical
        # monitor logs and identical RNG end state after every regime.
        assert list(scalar.hydra.log) == list(soa.hydra.log), (
            "scalar and SoA engines diverged at benchmark scale"
        )
        assert list(scalar.monitor.log) == list(soa.monitor.log)
        assert scalar.rng.getstate() == soa.rng.getstate()
        print(f"  parity OK ({len(soa.hydra.log)} hydra records identical)")


def run(
    sizes: List[int],
    quiet_ticks: int,
    busy_ticks: int,
    skip_parity: bool,
    out_path: Optional[str],
) -> dict:
    require_numpy("bench_tick_engine.py")
    report = BenchReport()
    print(f"calibration: {report.calibration:.4f}s")
    for position, servers in enumerate(sizes):
        bench_size(
            report,
            servers,
            quiet_ticks,
            busy_ticks,
            with_parity=(position == 0 and not skip_parity),
        )
    if out_path:
        report.write(out_path)
    return report.payload()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="10000,50000,100000",
        help="comma-separated online-server counts to benchmark",
    )
    parser.add_argument(
        "--quiet-ticks", type=int, default=20,
        help="ticks per size in the quiet (36-sim-second) regime",
    )
    parser.add_argument(
        "--busy-ticks", type=int, default=4,
        help="ticks per size in the busy (6-sim-hour) regime",
    )
    parser.add_argument(
        "--skip-parity", action="store_true",
        help="skip the scalar twin run (and its parity assert) at the smallest size",
    )
    parser.add_argument(
        "--out",
        default="BENCH_tick_engine.json",
        help="where to write the machine-readable report ('' to skip)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="compare against a committed baseline; exit 1 on gross regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed growth factor of normalized cost before failing --check",
    )
    options = parser.parse_args(argv)

    sizes = [int(token) for token in options.sizes.split(",") if token]
    current = run(
        sizes,
        options.quiet_ticks,
        options.busy_ticks,
        options.skip_parity,
        options.out or None,
    )

    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        regressions = compare_to_baseline(current, baseline, options.tolerance)
        if regressions:
            print(f"\nPERF REGRESSION (> {options.tolerance:.1f}x normalized cost):")
            for name, before, after in regressions:
                print(f"  {name}: {before:.2f}x cal -> {after:.2f}x cal")
            return 1
        print(f"\nperf check OK (tolerance {options.tolerance:.1f}x, "
              f"{len(baseline.get('benchmarks', {}))} baseline entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
