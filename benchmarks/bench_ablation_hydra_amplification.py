"""Ablation — Hydra proactive-lookup amplification on/off.

§5: Hydra-boosters proactively look up every cache-missed CID, which
amplifies download traffic and exposes a DoS vector ("asking a
Hydra-booster for non-existing content generates significant amounts of
traffic").  Disabling amplification collapses the Hydra download share.
"""

import dataclasses

import pytest

from repro.workload import WorkloadConfig
from repro.core import traffic
from repro.kademlia.messages import TrafficClass
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile

from _bench_utils import show


def _mini_config(**workload_overrides) -> ScenarioConfig:
    workload = WorkloadConfig(**workload_overrides)
    return ScenarioConfig(
        profile=WorldProfile(online_servers=350, seed=77),
        days=2,
        warmup_days=0,
        daily_cid_sample=50,
        provider_fetch_days=0,
        gateway_probes_per_endpoint=2,
        workload=workload,
        seed=77,
    )


@pytest.fixture(scope="module")
def amplified():
    return run_campaign(_mini_config())


@pytest.fixture(scope="module")
def silenced():
    return run_campaign(_mini_config(hydra_amplification_walks=0.0))


def _hydra_download_share(campaign):
    shares = traffic.platform_traffic_shares(
        campaign.hydra.log,
        campaign.world.rdns,
        campaign.hydra_peers,
        TrafficClass.DOWNLOAD,
    )
    return shares.get("hydra", 0.0)


def test_ablation_hydra_amplification(benchmark, amplified, silenced):
    on_share, off_share = benchmark.pedantic(
        lambda: (_hydra_download_share(amplified), _hydra_download_share(silenced)),
        rounds=1,
        iterations=1,
    )
    on_total = len(amplified.hydra.log)
    off_total = len(silenced.hydra.log)
    show(
        "Ablation — Hydra amplification",
        [
            ("hydra download share (on)", on_share, 0.50),
            ("hydra download share (off)", off_share, 0.0),
            ("total captured messages (on)", float(on_total), float("nan")),
            ("total captured messages (off)", float(off_total), float("nan")),
        ],
    )
    # Amplification is what puts the Hydra fleet at the top of the
    # download traffic; without it the fleet goes quiet.
    assert on_share > 0.25
    assert off_share < 0.05
    # And it inflates total DHT traffic substantially (the DoS vector).
    assert on_total > 1.2 * off_total
