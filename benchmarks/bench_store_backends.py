"""Storage-backend throughput: append + full scan per backend.

The monitor logs are the largest campaign datasets (the paper's Hydra
log holds 290 M messages).  This bench measures the event-log subsystem
on a synthetic Hydra-shaped workload: sequential appends (the hot write
path during a campaign) followed by a full decoding scan (what every §5
analysis pass costs).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.ids.cid import CID
from repro.ids.peerid import PeerID
from repro.kademlia.messages import MessageEnvelope, MessageType
from repro.store import (
    HYDRA_CODEC,
    EventLog,
    JsonlBackend,
    MemoryBackend,
    ShardedBackend,
    SqliteBackend,
)

NUM_EVENTS = 20_000


def _events(count: int):
    rng = random.Random(0xBE7C)
    peers = [PeerID.generate(rng) for _ in range(200)]
    cids = [CID.generate(rng) for _ in range(500)]
    types = [MessageType.GET_PROVIDERS, MessageType.ADD_PROVIDER, MessageType.FIND_NODE]
    events = []
    for i in range(count):
        message_type = types[i % 3]
        cid = cids[i % len(cids)] if message_type is not MessageType.FIND_NODE else None
        events.append(
            MessageEnvelope(
                timestamp=float(i),
                sender=peers[i % len(peers)],
                sender_ip=f"10.{(i >> 8) % 256}.{i % 256}.7",
                message_type=message_type,
                target_cid=cid,
                target_key=cid.dht_key if cid else i,
            )
        )
    return events


def _backend(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "jsonl":
        return JsonlBackend(tmp_path / "bench.jsonl")
    if kind == "sqlite":
        return SqliteBackend(tmp_path / "bench.sqlite")
    if kind == "sharded-sqlite":
        return ShardedBackend(
            [SqliteBackend(tmp_path / f"bench-{i}.sqlite") for i in range(4)]
        )
    raise AssertionError(kind)


@pytest.mark.parametrize("kind", ("memory", "jsonl", "sqlite", "sharded-sqlite"))
def test_backend_throughput(kind, tmp_path, benchmark):
    events = _events(NUM_EVENTS)

    def append_and_scan():
        log = EventLog(HYDRA_CODEC, _backend(kind, tmp_path))
        for event in events:
            log.append(event)
        log.flush()
        scanned = sum(1 for _ in log)
        log.backend.clear()  # rounds reuse the same path; start each clean
        log.close()
        return scanned

    scanned = benchmark.pedantic(append_and_scan, rounds=3, iterations=1)
    assert scanned == NUM_EVENTS


def test_window_pushdown_beats_full_scan(tmp_path):
    """The sqlite timestamp index makes narrow windows cheap."""
    events = _events(NUM_EVENTS)
    log = EventLog(HYDRA_CODEC, SqliteBackend(tmp_path / "window.sqlite"))
    for event in events:
        log.append(event)
    log.flush()

    start = time.perf_counter()
    narrow = sum(1 for _ in log.window(100.0, 200.0))
    window_seconds = time.perf_counter() - start

    start = time.perf_counter()
    full = sum(1 for _ in log)
    scan_seconds = time.perf_counter() - start

    print(
        f"\n=== sqlite window pushdown ===\n"
        f"window scan ({narrow} rows): {window_seconds * 1000:.1f} ms\n"
        f"full scan   ({full} rows): {scan_seconds * 1000:.1f} ms"
    )
    assert narrow == 100
    assert full == NUM_EVENTS
    assert window_seconds < scan_seconds
