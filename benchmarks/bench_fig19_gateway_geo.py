"""F19 — Fig. 19: gateway frontend vs overlay IPs by geolocation."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig19_gateway_geolocation(benchmark, campaign):
    f18 = benchmark(R.fig18_19_report, campaign)
    frontends = f18["frontend_country_shares"]
    overlay = f18["overlay_country_shares"]
    show(
        "Fig. 19 — gateway IPs by geolocation",
        [
            ("frontend: US", frontends.get("US", 0.0), float("nan")),
            ("frontend: NL", frontends.get("NL", 0.0), float("nan")),
            ("frontend: DE", frontends.get("DE", 0.0), float("nan")),
            ("overlay: US", overlay.get("US", 0.0), float("nan")),
            ("overlay: DE", overlay.get("DE", 0.0), float("nan")),
        ],
    )
    # US and DE dominate, mirroring the overall DHT geography (§7) …
    assert max(overlay, key=overlay.get) == "US"
    assert overlay.get("US", 0) + overlay.get("DE", 0) > 0.6
    # … while the frontend side shows the vantage-point NL bump the paper
    # attributes to its German measurement location.
    assert frontends.get("NL", 0.0) > 0.1
    assert max(frontends, key=frontends.get) == "US"
