"""F5 — Fig. 5: nodes of the DHT graph by cloud provider."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig05_cloud_providers(benchmark, campaign, paper):
    f5 = benchmark(R.fig5_report, campaign)
    show(
        "Fig. 5 — cloud providers (A-N)",
        [
            ("choopa", f5["an_choopa"], paper.an_choopa_share),
            ("top-3 share", f5["an_top3_share"], paper.an_top3_share),
            ("choopa under G-IP", f5["gip_choopa"], paper.gip_choopa_share),
        ],
    )
    cloud_only = {k: v for k, v in f5["A-N"].items() if k not in ("non-cloud", "both")}
    ranking = sorted(cloud_only, key=cloud_only.get, reverse=True)
    print("A-N provider ranking:", ranking[:6])
    # choopa dominates, the top-3 carry about half the network.
    assert ranking[0] == "choopa"
    assert abs(f5["an_choopa"] - paper.an_choopa_share) < 0.06
    assert abs(f5["an_top3_share"] - paper.an_top3_share) < 0.08
    # Under G-IP choopa's share shrinks (the paper: 29.3 % → 13.8 %).
    assert f5["gip_choopa"] < f5["an_choopa"]


def test_fig05_vultr_contabo_follow(campaign, benchmark):
    f5 = benchmark(R.fig5_report, campaign)
    a_n = f5["A-N"]
    assert a_n.get("vultr", 0) > a_n.get("digital-ocean", 0)
    assert a_n.get("contabo", 0) > a_n.get("hetzner", 0)
