"""F12 — Fig. 12: cloud per traffic type, by IP count and by volume."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig12_cloud_per_traffic_type(benchmark, campaign, paper):
    f12 = benchmark(R.fig12_report, campaign)
    show(
        "Fig. 12 — cloud per traffic type",
        [
            ("cloud by IP count (all)", f12["overall_cloud_by_ip_count"], paper.cloud_ip_count_share),
            ("cloud by IP count (download)", f12["download_cloud_by_ip_count"], paper.cloud_ip_count_download_share),
            ("cloud by IP count (advert)", f12["advert_cloud_by_ip_count"], paper.cloud_ip_count_advertisement_share),
            ("cloud by volume (all)", f12["overall_cloud_by_volume"], paper.cloud_traffic_weighted_share),
            ("cloud by volume (download)", f12["download_cloud_by_volume"], paper.cloud_traffic_weighted_download_share),
            ("AWS share of download volume", f12["aws_download_by_volume"], paper.aws_traffic_weighted_download_share),
        ],
    )
    # Count-level: cloud is a ~third of IPs, more present in downloads
    # than in advertisements (the paper's surprise).
    assert abs(f12["overall_cloud_by_ip_count"] - paper.cloud_ip_count_share) < 0.10
    assert f12["download_cloud_by_ip_count"] > f12["advert_cloud_by_ip_count"]
    # Volume-level: cloud dominates outright, led by Amazon AWS.
    assert f12["overall_cloud_by_volume"] > 0.6
    assert f12["overall_cloud_by_volume"] > f12["overall_cloud_by_ip_count"] + 0.2
    assert abs(f12["aws_download_by_volume"] - paper.aws_traffic_weighted_download_share) < 0.15
    top = dict(f12["top_providers_by_volume"])
    assert max(top, key=top.get) in ("amazon-aws", "non-cloud")
