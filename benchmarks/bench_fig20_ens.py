"""F20 — Fig. 20: content-provider statistics for ENS-referenced CIDs."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig20_ens_providers(benchmark, campaign, paper):
    f20 = benchmark(R.fig20_report, campaign)
    show(
        "Fig. 20 — ENS-referenced content providers (unique IPs)",
        [
            ("cloud share", f20["cloud_share"], paper.ens_cloud_share),
            ("US+DE share", f20["us_de_share"], paper.ens_us_de_share),
            ("records resolved / names",
             f20["num_provider_records"] / max(f20["num_cids"], 1),
             paper.ens_provider_records / paper.ens_records_with_contenthash),
        ],
    )
    # Even blockchain-named content is mostly cloud-hosted …
    assert abs(f20["cloud_share"] - paper.ens_cloud_share) < 0.12
    # … and concentrated in the US and Germany.
    assert f20["us_de_share"] > 0.45
    top_providers = dict(f20["top_providers"])
    assert any(p in top_providers for p in ("amazon-aws", "cloudflare", "choopa"))
    assert f20["num_unique_ips"] > 0


def test_fig20_resolution_rate(benchmark, campaign):
    """The paper resolved 16.8 k of 20.6 k records (≈82 %); a fraction of
    ENS content has rotted away."""

    def rate():
        resolved = sum(1 for o in campaign.ens_observations if o.reachable)
        return resolved / max(len(campaign.ens_observations), 1)

    resolution_rate = benchmark(rate)
    show("Fig. 20 — ENS resolution rate", [("resolvable names", resolution_rate, 16.8 / 20.6)])
    assert 0.4 < resolution_rate <= 1.0
