"""F8 — Fig. 8: resilience of the undirected DHT graph to removals."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig08_resilience(benchmark, campaign, paper):
    f8 = benchmark.pedantic(
        R.fig8_report, args=(campaign,), kwargs={"repetitions": 5}, rounds=1, iterations=1
    )
    show(
        "Fig. 8 — removal resilience",
        [
            ("random: LCC share @90% removed", f8["random_lcc_at_90pct"],
             paper.random_removal_lcc_at_90pct),
            ("targeted: full partition at", f8["targeted_partition_point"],
             paper.targeted_removal_partition_point),
        ],
    )
    # Robust to random failure deep into the removal …
    assert f8["random_lcc_at_90pct"] > 0.85
    # … but targeted removal fully partitions the network well before the
    # end (our denser small graph partitions somewhat later than the
    # paper's 60 %; see EXPERIMENTS.md).
    assert f8["targeted_partition_point"] < 0.85
    # Targeted is strictly more effective than random at every checkpoint.
    targeted = dict(zip(f8["targeted_fractions"], f8["targeted_lcc"]))
    mean_random = dict(zip(f8["random_fractions"], f8["random_mean_lcc"]))
    for fraction in (0.3, 0.5, 0.6):
        targeted_at = min(targeted.items(), key=lambda kv: abs(kv[0] - fraction))[1]
        random_at = min(mean_random.items(), key=lambda kv: abs(kv[0] - fraction))[1]
        assert targeted_at <= random_at + 1e-9


def test_fig08_confidence_interval_is_tight(campaign, benchmark):
    """The paper reports a 95 % CI over 10 random repetitions; the CI
    half-width stays small because random removal is so stable."""
    f8 = benchmark.pedantic(
        R.fig8_report, args=(campaign,), kwargs={"repetitions": 4}, rounds=1, iterations=1
    )
    # Within the plotted range (≤90 % removed) the CI stays narrow; only
    # the last few-node endgame is noisy.
    halfwidths = [
        width
        for fraction, width in zip(f8["random_fractions"], f8["random_ci95"])
        if fraction <= 0.9
    ]
    assert max(halfwidths) < 0.12
