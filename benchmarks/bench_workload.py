#!/usr/bin/env python
"""Throughput benchmark for the open-loop workload driver.

Measures request-generation throughput — **requests per wall-second** —
of the ``repro.workload`` session driver at 10 k, 100 k and 1 M modelled
users.  The driver is the piece that makes user count a pure intensity
knob: arrivals are one Poisson draw per tick and everything after that
is proportional to the *traffic*, never to the user population, so a
million-user workload costs exactly what its request volume costs.

The run is the same synthetic dry-run that backs ``repro workload
sample`` (no overlay, executions counted rather than simulated), so the
numbers isolate the sampling pipeline itself: session attribute draws,
Pareto trains, Zipf inverse-CDF lookups and heap scheduling.

Usage::

    PYTHONPATH=src python benchmarks/bench_workload.py                   # full run
    PYTHONPATH=src python benchmarks/bench_workload.py \
        --sizes 10000 --check BENCH_workload.json                        # CI gate
    PYTHONPATH=src python benchmarks/bench_workload.py \
        --sizes 1000000 --hours 1 --out ""                               # smoke

``--check`` compares hardware-normalized per-request costs against the
committed baseline and exits non-zero on a > ``--tolerance`` (default
3x) gross regression; only sizes present in both runs are compared.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

if __package__ in (None, ""):
    _repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for entry in (os.path.join(_repo_root, "src"), os.path.dirname(os.path.abspath(__file__))):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from _bench_utils import BenchReport, compare_to_baseline

from repro.workload import parse_workload_spec, sample_workload

SEED = 2023

#: modelled users -> simulated hours.  Hours shrink as users grow so
#: every size generates a comparable (and CI-affordable) event count;
#: throughput is per-request, so the ratio does not skew the metric.
DEFAULT_PLAN = ((10_000, 24), (100_000, 6), (1_000_000, 2))


def bench_size(report: BenchReport, users: int, hours: int) -> None:
    spec = parse_workload_spec(f"zipf:users={users}")
    print(f"\n--- {users:,} users, {hours} simulated hours ---")
    start = time.perf_counter()
    out = sample_workload(spec, seed=SEED, hours=hours)
    seconds = time.perf_counter() - start
    requests = out["stats"]["open_requests"]
    events = requests + out["stats"]["open_publishes"]
    report.record(f"openloop_sample_{users}", seconds, max(1, requests))
    print(
        f"  {requests:,} requests ({out['stats']['sessions']:,} sessions, "
        f"{out['distinct_cids']:,} distinct CIDs) "
        f"-> {requests / seconds:12,.0f} requests/s "
        f"({events / seconds:,.0f} events/s)"
    )
    shares = out["headline_shares"]
    print(
        f"  shares: missing={shares['missing_share']:.3f} "
        f"platform={shares['platform_share']:.3f} "
        f"top1%={shares['top1pct_request_share']:.3f}"
    )


def run(plan, out_path: Optional[str]) -> dict:
    report = BenchReport()
    print(f"calibration: {report.calibration:.4f}s")
    for users, hours in plan:
        bench_size(report, users, hours)
    if out_path:
        report.write(out_path)
    return report.payload()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default=",".join(str(users) for users, _ in DEFAULT_PLAN),
        help="comma-separated modelled user counts to benchmark",
    )
    parser.add_argument(
        "--hours", type=int, default=0,
        help="override simulated hours for every size (0 = per-size default)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_workload.json",
        help="where to write the machine-readable report ('' to skip)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="compare against a committed baseline; exit 1 on gross regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed growth factor of normalized cost before failing --check",
    )
    options = parser.parse_args(argv)

    default_hours = dict(DEFAULT_PLAN)
    plan = [
        (users, options.hours or default_hours.get(users, 2))
        for users in (int(token) for token in options.sizes.split(",") if token)
    ]
    current = run(plan, options.out or None)

    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        regressions = compare_to_baseline(current, baseline, options.tolerance)
        if regressions:
            for name, before, after in regressions:
                print(
                    f"REGRESSION {name}: normalized cost {before:.2f} -> {after:.2f}",
                    file=sys.stderr,
                )
            return 1
        print(f"\nbaseline check OK (tolerance {options.tolerance:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
