"""F15 — Fig. 15: provider-popularity Pareto chart.

The paper: ≈1 % of peers appear as a provider in ≈90 % of the records;
cloud peers hold ≈70 % of record appearances, NAT-ed <8 %, non-cloud
≈22 %.  The top-1 % share is strongly dependent on the size of the
unique-provider universe (ours is hundreds, the paper's is far larger),
so the benchmark also reports the top-10-peers share as a scale-robust
concentration measure.
"""

from repro.core.pareto import top_share
from repro.core.providers_analysis import _records_by_provider
from repro.scenario import report as R

from _bench_utils import show


def test_fig15_provider_popularity(benchmark, campaign, paper):
    f15 = benchmark(R.fig15_report, campaign)
    by_provider = _records_by_provider(campaign.provider_observations)
    appearances = {peer: float(len(records)) for peer, records in by_provider.items()}
    top10_peers_share = (
        sum(sorted(appearances.values(), reverse=True)[:10]) / sum(appearances.values())
        if appearances
        else 0.0
    )
    shares = f15["record_shares_by_class"]
    show(
        "Fig. 15 — provider popularity",
        [
            ("top-1% of peers' record share", f15["top1pct_record_share"], paper.top1pct_provider_record_share),
            ("top-10 peers' record share", top10_peers_share, float("nan")),
            ("records from cloud peers", shares.get("cloud", 0.0), paper.records_cloud_share),
            ("records from NAT-ed peers", shares.get("nat-ed", 0.0), paper.records_nat_share),
            ("records from non-cloud peers", shares.get("non-cloud", 0.0), paper.records_noncloud_share),
        ],
    )
    # Concentration far above uniform (1% of peers would hold 1%).
    assert f15["top1pct_record_share"] > 0.05
    assert top10_peers_share > 0.1
    # Cloud peers hold the clear majority of record appearances; NAT-ed
    # peers appear in far fewer records than their unique-peer share.
    assert shares.get("cloud", 0) > 0.5
    assert shares.get("nat-ed", 0) < 0.45
    ys = [y for _, y in f15["curve"]]
    assert ys == sorted(ys)
