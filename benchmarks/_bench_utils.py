"""Formatting and measurement helpers for the benchmarks.

Besides the measured-vs-paper table used by the figure benchmarks, this
module provides the machinery of the perf-regression harness
(``bench_core_hotpaths.py``): best-of-N timing, a hardware calibration
loop, a machine-readable JSON writer and a baseline comparator.

Hardware normalization: absolute seconds are useless across machines, so
every timing is also recorded as a multiple of ``calibrate()`` — the time
a fixed pure-Python workload takes on the same interpreter and host.
Regression checks compare *normalized* costs, making a committed baseline
portable between a laptop and a CI runner.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, List, Tuple


def show(title: str, rows) -> None:
    """Print a measured-vs-paper comparison table."""
    print(f"\n=== {title} ===")
    width = max(len(name) for name, _, _ in rows)
    print(f"{'metric'.ljust(width)}  measured    paper")
    for name, measured, paper in rows:
        measured_text = f"{measured:8.3f}" if isinstance(measured, float) else f"{measured!s:>8}"
        paper_text = f"{paper:8.3f}" if isinstance(paper, float) else f"{paper!s:>8}"
        print(f"{name.ljust(width)}  {measured_text}  {paper_text}")


def calibrate(loops: int = 300_000) -> float:
    """Seconds for a fixed pure-Python workload on this host.

    The workload mixes integer arithmetic, dict access and list building —
    the operation mix the hot paths exercise — so dividing a benchmark's
    wall time by this yields a hardware-independent cost unit.
    """
    best = float("inf")
    for _ in range(3):
        table = {}
        start = time.perf_counter()
        accumulator = 0
        for index in range(loops):
            accumulator ^= index * 2654435761 % 1048576
            table[index & 1023] = accumulator
        values = sorted(table.values())
        accumulator += values[0]
        best = min(best, time.perf_counter() - start)
    return best


def best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best wall-clock seconds of ``repeat`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class BenchReport:
    """Collects benchmark results and writes the machine-readable JSON."""

    def __init__(self) -> None:
        self.calibration = calibrate()
        self.benchmarks: Dict[str, Dict[str, float]] = {}
        self.speedups: Dict[str, float] = {}

    def record(self, name: str, seconds: float, calls: int = 1) -> None:
        self.benchmarks[name] = {
            "seconds": seconds,
            "normalized": seconds / self.calibration,
            "per_call_us": seconds / calls * 1e6,
        }
        print(
            f"{name:<28} {seconds:8.4f}s  "
            f"{seconds / calls * 1e6:10.1f} us/call  "
            f"{seconds / self.calibration:8.2f}x cal"
        )

    def record_speedup(self, name: str, reference_seconds: float, seconds: float) -> None:
        speedup = reference_seconds / seconds if seconds > 0 else float("inf")
        self.speedups[name] = speedup
        print(f"{name:<28} speedup vs reference: {speedup:6.2f}x")

    def payload(self) -> dict:
        return {
            "schema": 1,
            "python": sys.version.split()[0],
            "calibration_seconds": self.calibration,
            "benchmarks": self.benchmarks,
            "speedups": self.speedups,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {path}")


def compare_to_baseline(
    current: dict, baseline: dict, tolerance: float = 3.0
) -> List[Tuple[str, float, float]]:
    """Regressions of ``current`` vs ``baseline``: entries whose normalized
    cost grew by more than ``tolerance``x (gross regressions only — both
    runs normalize to their own host's calibration, so ordinary noise and
    hardware differences cancel out)."""
    regressions = []
    for name, entry in baseline.get("benchmarks", {}).items():
        now = current.get("benchmarks", {}).get(name)
        if now is None:
            continue
        before_cost = entry["normalized"]
        after_cost = now["normalized"]
        if before_cost > 0 and after_cost / before_cost > tolerance:
            regressions.append((name, before_cost, after_cost))
    return regressions
