"""Formatting helpers for the figure benchmarks."""

from __future__ import annotations


def show(title: str, rows) -> None:
    """Print a measured-vs-paper comparison table."""
    print(f"\n=== {title} ===")
    width = max(len(name) for name, _, _ in rows)
    print(f"{'metric'.ljust(width)}  measured    paper")
    for name, measured, paper in rows:
        measured_text = f"{measured:8.3f}" if isinstance(measured, float) else f"{measured!s:>8}"
        paper_text = f"{paper:8.3f}" if isinstance(paper, float) else f"{paper!s:>8}"
        print(f"{name.ljust(width)}  {measured_text}  {paper_text}")
