"""Shared campaigns for the figure benchmarks.

Two expensive artifacts are built once per session:

* ``campaign`` — the full multi-modal campaign (traffic, crawls, provider
  fetches, entry-point measurements) at bench scale,
* ``horizon_campaign`` — a crawl-only campaign with the paper's temporal
  design (38 days, 101 crawls) for the counting-methodology figures,
  whose G-IP numbers are horizon-dependent.

Every benchmark prints a measured-vs-paper table; the paper targets come
from :data:`repro.world.profiles.PAPER`.
"""

from __future__ import annotations

import pytest

from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import PAPER, WorldProfile

#: Network size for the main bench campaign.  Shares are approximately
#: scale-invariant; raise this (e.g. via ScenarioConfig.paper_scale) for
#: a closer but much slower reproduction.
BENCH_SERVERS = 1500
BENCH_DAYS = 6


@pytest.fixture(scope="session")
def campaign():
    config = ScenarioConfig(
        profile=WorldProfile(online_servers=BENCH_SERVERS),
        days=BENCH_DAYS,
        daily_cid_sample=300,
        provider_fetch_days=5,
    )
    return run_campaign(config)


@pytest.fixture(scope="session")
def horizon_campaign():
    return run_campaign(ScenarioConfig.paper_horizon(700))


@pytest.fixture()
def paper():
    return PAPER
