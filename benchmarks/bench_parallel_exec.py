"""Parallel crawl execution — wall-clock speedup vs worker count.

The paper's temporal design rests on *many* repeated crawls (144/day in
the real study); ``repro.exec`` fans their BFS bucket sweeps out over a
process pool while the simulation keeps advancing.  This bench runs the
same crawl-heavy campaign at 1, 2 and 4 workers, records the speedup
and re-verifies that every worker count yields the identical dataset.

Speedup is hardware-bound: on a multi-core machine the 4-worker run
completes the repeated-crawl campaign ≥2× faster than serial; on a
single core the numbers degrade gracefully towards 1× (the table shows
whatever the hardware allows).
"""

import dataclasses
import time

from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile

from _bench_utils import show

WORKER_COUNTS = (1, 2, 4)


def _crawl_heavy_config(workers: int) -> ScenarioConfig:
    """Many crawls, no traffic: the workload parallel execution targets."""
    return ScenarioConfig(
        profile=WorldProfile(online_servers=500),
        days=3,
        crawls_per_day=6.0,
        ticks_per_day=4,
        traffic_enabled=False,
        daily_cid_sample=0,
        provider_fetch_days=0,
        gateway_probes_per_endpoint=2,
        workers=workers,
    )


def _fingerprint(result) -> tuple:
    """A compact identity of the crawl dataset for cross-run comparison."""
    return tuple(
        (
            snapshot.crawl_id,
            snapshot.started_at,
            snapshot.requests_sent,
            snapshot.num_discovered,
            snapshot.num_crawlable,
            tuple(obs.peer.digest for obs in snapshot.observations.values()),
        )
        for snapshot in result.crawls.snapshots
    )


def test_parallel_crawl_speedup(benchmark):
    def sweep():
        timings = {}
        fingerprints = {}
        for workers in WORKER_COUNTS:
            started = time.perf_counter()
            result = run_campaign(_crawl_heavy_config(workers))
            timings[workers] = time.perf_counter() - started
            fingerprints[workers] = _fingerprint(result)
            assert not result.exec_errors
        return timings, fingerprints

    timings, fingerprints = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    serial = timings[1]
    for workers in WORKER_COUNTS:
        rows.append((f"wall-clock @ workers={workers} (s)", timings[workers], serial))
        rows.append((f"speedup @ workers={workers}", serial / timings[workers], float(workers)))
    show("Parallel crawl execution (18-crawl campaign)", rows)

    # Determinism is hardware-independent: every worker count must yield
    # the bit-identical dataset.
    for workers in WORKER_COUNTS[1:]:
        assert fingerprints[workers] == fingerprints[1]
