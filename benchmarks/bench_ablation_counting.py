"""Ablation — counting methodologies vs churn and IP rotation.

DESIGN.md §5: sweep the IP-rotation rate of a synthetic non-cloud
population and show that the G-IP cloud share is an artifact of rotation
while A-N is invariant — the mechanism behind Figs. 3-4.
"""

import random

from repro.core.counting import (
    CountingMethod,
    CrawlRow,
    cloud_status_combine,
    counts,
    shares,
)
from repro.ids.peerid import PeerID

from _bench_utils import show

NUM_CRAWLS = 30
NUM_CLOUD = 60
NUM_RESID = 40


def synth_rows(rotation_prob, seed=0):
    """60 stable cloud peers, 40 non-cloud peers rotating IPs at the
    given per-crawl probability."""
    rng = random.Random(seed)
    rows = []
    cloud_peers = [PeerID.generate(rng) for _ in range(NUM_CLOUD)]
    resid_peers = [PeerID.generate(rng) for _ in range(NUM_RESID)]
    resid_ip = {peer: index for index, peer in enumerate(resid_peers)}
    next_ip = len(resid_peers)
    for crawl in range(NUM_CRAWLS):
        for index, peer in enumerate(cloud_peers):
            rows.append(CrawlRow(crawl, peer, f"cloud-{index}"))
        for peer in resid_peers:
            if rng.random() < rotation_prob:
                resid_ip[peer] = next_ip
                next_ip += 1
            rows.append(CrawlRow(crawl, peer, f"resid-{resid_ip[peer]}"))
    return rows


def prop(ip):
    return "cloud" if ip.startswith("cloud") else "non-cloud"


def measure(rotation_prob):
    rows = synth_rows(rotation_prob)
    g_ip = shares(counts(rows, prop, CountingMethod.G_IP))
    a_n = shares(
        counts(rows, prop, CountingMethod.A_N, combine=cloud_status_combine)
    )
    return g_ip.get("cloud", 0.0), a_n.get("cloud", 0.0)


def test_ablation_rotation_sweep(benchmark):
    sweep = benchmark(lambda: {p: measure(p) for p in (0.0, 0.2, 0.5, 0.9)})
    rows = []
    for probability, (g_ip, a_n) in sorted(sweep.items()):
        rows.append((f"G-IP cloud @ rotation {probability}", g_ip, float("nan")))
        rows.append((f"A-N  cloud @ rotation {probability}", a_n, 0.6))
    show("Ablation — IP rotation vs counting methodology", rows)
    # Without rotation both methodologies agree on the true 60 % share.
    assert abs(sweep[0.0][0] - 0.6) < 0.01
    assert abs(sweep[0.0][1] - 0.6) < 0.01
    # G-IP decays monotonically with rotation; A-N does not move.
    gip_values = [sweep[p][0] for p in (0.0, 0.2, 0.5, 0.9)]
    assert gip_values == sorted(gip_values, reverse=True)
    assert gip_values[-1] < 0.2
    for probability in (0.2, 0.5, 0.9):
        assert abs(sweep[probability][1] - 0.6) < 0.01


def test_ablation_churn_overcounting(benchmark):
    """Churning peers (fresh peer IDs every session) inflate G-N/G-IP but
    not A-N — the second overcounting source the paper names."""

    def build():
        rng = random.Random(5)
        rows = []
        stable = PeerID.generate(rng)
        for crawl in range(NUM_CRAWLS):
            rows.append(CrawlRow(crawl, stable, "cloud-0"))
            # A different short-lived non-cloud peer every crawl.
            rows.append(CrawlRow(crawl, PeerID.generate(rng), f"resid-{crawl}"))
        g_n = counts(rows, prop, CountingMethod.G_N)
        a_n = counts(rows, prop, CountingMethod.A_N)
        return g_n, a_n

    g_n, a_n = benchmark(build)
    show(
        "Ablation — churn (fresh IDs per session)",
        [
            ("G-N non-cloud count", g_n["non-cloud"], float("nan")),
            ("A-N non-cloud count", a_n["non-cloud"], 1.0),
        ],
    )
    assert g_n["non-cloud"] == NUM_CRAWLS  # every churner counted
    assert a_n["non-cloud"] == 1.0         # one typical node per snapshot
