"""Extension — §9: randomizing the browser's default gateway.

"Changing the default gateway to a random one supported by a dynamic,
permissionless discovery system could maintain simplicity while avoiding
reliance on cloud infrastructure."  Measures the traffic concentration
each policy induces over the public gateway set.
"""

import random

from repro.gateway.registry import PublicGatewayRegistry
from repro.gateway.selection import GatewaySelector, SelectionPolicy

from _bench_utils import show


def test_ext_gateway_selection_policies(benchmark):
    selector = GatewaySelector(PublicGatewayRegistry(), rng=random.Random(21))

    def run():
        return (
            selector.concentration(SelectionPolicy.FIXED_DEFAULT, requests=20_000),
            selector.concentration(SelectionPolicy.RANDOM_FUNCTIONAL, requests=20_000),
        )

    fixed, spread = benchmark(run)
    show(
        "Extension — gateway selection policy",
        [
            ("busiest gateway share (fixed default)", fixed["busiest_gateway_share"], 1.0),
            ("busiest gateway share (random)", spread["busiest_gateway_share"], 1 / 22),
            ("cloud share of requests (fixed default)", fixed["cloud_share"], 1.0),
            ("cloud share of requests (random)", spread["cloud_share"], float("nan")),
            ("Gini across gateways (fixed default)", fixed["gini"], float("nan")),
            ("Gini across gateways (random)", spread["gini"], 0.0),
        ],
    )
    assert fixed["busiest_gateway_share"] == 1.0
    assert spread["busiest_gateway_share"] < 0.1
    assert spread["gini"] < fixed["gini"] - 0.5
    assert spread["cloud_share"] < fixed["cloud_share"]
