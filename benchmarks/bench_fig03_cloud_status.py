"""F3 — Fig. 3: DHT participants by cloud status, both methodologies.

A-N is horizon-independent and measured on the main campaign; the G-IP
number depends on how many crawls are aggregated (that is the paper's
point), so it is measured on the paper-horizon campaign (38 days /
101 crawls, crawl-only).
"""

from repro.scenario import report as R

from _bench_utils import show


def test_fig03_cloud_status_a_n(benchmark, campaign, paper):
    f3 = benchmark(R.fig3_report, campaign)
    a_n = f3["A-N"]
    show(
        "Fig. 3 — cloud status (A-N, bench campaign)",
        [
            ("cloud", a_n.get("cloud", 0.0), paper.an_cloud_share),
            ("non-cloud", a_n.get("non-cloud", 0.0), paper.an_noncloud_share),
            ("both", a_n.get("both", 0.0), 1 - paper.an_cloud_share - paper.an_noncloud_share),
        ],
    )
    assert a_n["cloud"] > a_n["non-cloud"]
    assert abs(a_n["cloud"] - paper.an_cloud_share) < 0.08


def test_fig03_cloud_status_g_ip(horizon_campaign, paper, benchmark):
    f3 = benchmark(R.fig3_report, horizon_campaign)
    g_ip = f3["G-IP"]
    a_n = f3["A-N"]
    show(
        "Fig. 3 — cloud status (G-IP, paper-horizon campaign)",
        [
            ("G-IP cloud", g_ip.get("cloud", 0.0), paper.gip_cloud_share),
            ("G-IP non-cloud", g_ip.get("non-cloud", 0.0), paper.gip_noncloud_share),
            ("A-N cloud", a_n.get("cloud", 0.0), paper.an_cloud_share),
        ],
    )
    # The headline divergence: G-IP inflates the non-cloud share far above
    # its A-N value while the cloud majority flips toward parity.
    assert g_ip["non-cloud"] > 2 * a_n.get("non-cloud", 0.0)
    assert g_ip["cloud"] < a_n["cloud"] - 0.2
