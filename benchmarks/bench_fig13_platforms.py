"""F13 — Fig. 13: platforms generating traffic (reverse-DNS attribution).

The paper: Hydra-boosters account for ≈35 % of DHT traffic and ≈50 % of
downloads; web3.storage and nft.storage dominate advertisement traffic;
ipfs-bank dominates the attributed share of Bitswap traffic.
"""

from repro.scenario import report as R

from _bench_utils import show


def test_fig13_platform_attribution(benchmark, campaign, paper):
    f13 = benchmark(R.fig13_report, campaign)
    dht_all = f13["dht_all"]
    downloads = f13["dht_download"]
    adverts = f13["dht_advertisement"]
    show(
        "Fig. 13 — platform traffic shares",
        [
            ("hydra share of all DHT", dht_all.get("hydra", 0.0), paper.hydra_dht_traffic_share),
            ("hydra share of downloads", downloads.get("hydra", 0.0), paper.hydra_download_traffic_share),
            ("web3.storage share of adverts", adverts.get("web3-storage", 0.0), float("nan")),
            ("nft.storage share of adverts", adverts.get("nft-storage", 0.0), float("nan")),
        ],
    )
    assert abs(dht_all.get("hydra", 0.0) - paper.hydra_dht_traffic_share) < 0.12
    assert abs(downloads.get("hydra", 0.0) - paper.hydra_download_traffic_share) < 0.15
    # Hydra is invisible in advertisement traffic (it only looks up).
    assert adverts.get("hydra", 0.0) < 0.02
    # web3.storage and nft.storage lead the advertisement panel.
    named = {k: v for k, v in adverts.items() if k != "other"}
    ranking = sorted(named, key=named.get, reverse=True)
    assert ranking[:2] == ["web3-storage", "nft-storage"]


def test_fig13_ipfs_bank_dominates_bitswap(benchmark, campaign):
    f13 = benchmark(R.fig13_report, campaign)
    bitswap = {k: v for k, v in f13["bitswap"].items() if k != "other"}
    show(
        "Fig. 13 — Bitswap platform shares (attributed)",
        [(name, share, float("nan")) for name, share in sorted(bitswap.items(), key=lambda kv: -kv[1])[:4]],
    )
    assert max(bitswap, key=bitswap.get) in ("ipfs-bank", "amazon-aws-other")
    assert bitswap.get("ipfs-bank", 0.0) > bitswap.get("web3-storage", 0.0)
