"""F9 — Fig. 9: request frequency per identifier (days seen).

The paper: the vast majority of CIDs are seen 1-3 days; IPs and peer IDs
are mostly short-lived; the cloud share among IPs grows with longevity.
Our observation window is the bench campaign's days (the paper's is ~9
months), so the comparable structure is the *decay* of the histograms
and the cloud-longevity gradient.
"""

from repro.scenario import report as R

from _bench_utils import show


def test_fig09_identifier_frequency(benchmark, campaign):
    f9 = benchmark(R.fig9_report, campaign)
    cid_days = f9["cid_days"]
    ip_days = f9["ip_days"]
    peer_days = f9["peerid_days"]
    total_cids = sum(cid_days.values())
    show(
        "Fig. 9 — days seen (shares of identifiers)",
        [
            ("CIDs seen 1 day", cid_days.get(1, 0) / total_cids, float("nan")),
            ("CIDs seen <=3 days",
             sum(v for d, v in cid_days.items() if d <= 3) / total_cids, 0.9),
            ("IPs seen 1 day", ip_days.get(1, 0) / sum(ip_days.values()), float("nan")),
            ("peerIDs seen 1 day",
             peer_days.get(1, 0) / sum(peer_days.values()), float("nan")),
        ],
    )
    # Single-day identifiers form the largest CID bucket.
    assert cid_days.get(1, 0) == max(cid_days.values())
    # Short-lived IPs and peer IDs dominate their histograms too.
    assert ip_days.get(1, 0) == max(ip_days.values())
    assert peer_days.get(1, 0) == max(peer_days.values())


def test_fig09_cloud_share_grows_with_ip_longevity(benchmark, campaign):
    f9 = benchmark(R.fig9_report, campaign)
    by_days = f9["ip_cloud_share_by_days"]
    days = sorted(by_days)
    short_lived = by_days[days[0]]
    long_lived = by_days[days[-1]]
    show(
        "Fig. 9 — cloud share by IP longevity",
        [
            (f"cloud share @ {days[0]} day(s)", short_lived, float("nan")),
            (f"cloud share @ {days[-1]} day(s)", long_lived, float("nan")),
        ],
    )
    # IPs seen on many days skew cloud (paper's overlay finding).
    assert long_lived > short_lived
