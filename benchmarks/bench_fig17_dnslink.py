"""F17 — Fig. 17: DNSLink records pointing to IPFS content providers."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig17_dnslink(benchmark, campaign, paper):
    f17 = benchmark(R.fig17_report, campaign)
    show(
        "Fig. 17 — DNSLink gateway/proxy IPs",
        [
            ("Cloudflare share", f17["cloudflare_share"], paper.dnslink_cloudflare_share),
            ("non-cloud share", f17["noncloud_share"], paper.dnslink_noncloud_share),
            ("overlap with public gateway IPs", f17["public_gateway_ip_share"], paper.dnslink_public_gateway_ip_share),
        ],
    )
    providers = f17["provider_shares"]
    # Cloudflare alone hosts about half of the DNSLink-serving IPs.
    assert abs(f17["cloudflare_share"] - paper.dnslink_cloudflare_share) < 0.10
    assert max(providers, key=providers.get) == "cloudflare"
    # ≈20 % remain non-cloud, and only a minority of the IPs belong to the
    # public gateways themselves.
    assert abs(f17["noncloud_share"] - paper.dnslink_noncloud_share) < 0.08
    assert 0.05 < f17["public_gateway_ip_share"] < 0.40
    assert f17["num_records"] > 100
