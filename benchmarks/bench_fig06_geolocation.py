"""F6 — Fig. 6: nodes of the DHT graph by origin country."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig06_geolocation_a_n(benchmark, campaign, paper):
    f6 = benchmark(R.fig6_report, campaign)
    a_n = f6["A-N"]
    show(
        "Fig. 6 — geolocation (A-N)",
        [
            ("US", a_n.get("US", 0.0), paper.an_country_shares["US"]),
            ("DE", a_n.get("DE", 0.0), paper.an_country_shares["DE"]),
            ("KR", a_n.get("KR", 0.0), paper.an_country_shares["KR"]),
            ("non-top-10", f6["an_non_top10"], paper.an_non_top10_share),
        ],
    )
    ranked = sorted(a_n.items(), key=lambda kv: -kv[1])
    assert ranked[0][0] == "US"
    assert ranked[1][0] == "DE"
    assert abs(a_n["US"] - paper.an_country_shares["US"]) < 0.05
    assert abs(a_n["DE"] - paper.an_country_shares["DE"]) < 0.04
    assert abs(f6["an_non_top10"] - paper.an_non_top10_share) < 0.05


def test_fig06_geolocation_g_ip_shift(benchmark, horizon_campaign, paper):
    """The G-IP view inflates churny countries (paper: CN enters 2nd)."""
    f6 = benchmark(R.fig6_report, horizon_campaign)
    g_ip = f6["G-IP"]
    a_n = f6["A-N"]
    show(
        "Fig. 6 — geolocation (G-IP, paper horizon)",
        [
            ("US", g_ip.get("US", 0.0), paper.gip_country_shares["US"]),
            ("CN", g_ip.get("CN", 0.0), paper.gip_country_shares["CN"]),
            ("DE", g_ip.get("DE", 0.0), paper.gip_country_shares["DE"]),
            ("non-top-10", f6["gip_non_top10"], paper.gip_non_top10_share),
        ],
    )
    # CN's share inflates by multiples under unique-IP counting …
    assert g_ip.get("CN", 0.0) > 1.5 * a_n.get("CN", 0.0)
    # … the US share shrinks, and the long tail grows.
    assert g_ip["US"] < a_n["US"]
    assert f6["gip_non_top10"] > f6["an_non_top10"]
