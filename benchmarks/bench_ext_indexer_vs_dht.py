"""Extension — §9: network indexers vs the DHT.

"Cloud-based resolution is always faster than decentralised lookup …
we strongly advise keeping the DHT as a fallback resolution mechanism."
Quantifies both halves: the latency gap, and what indexer-side
censorship does to availability with and without the DHT fallback.
"""

import random

import pytest

from repro.ids.cid import CID
from repro.indexer.resolution import (
    CombinedResolver,
    ResolutionStrategy,
    availability,
    mean_latency,
)
from repro.indexer.service import IndexerService

from _bench_utils import show


@pytest.fixture(scope="module")
def resolution_setup(campaign):
    overlay = campaign.overlay
    rng = random.Random(88)
    cids = []
    publishers = [n for n in overlay.online_servers() if n.reachable][:40]
    for index in range(40):
        cid = CID.generate(rng)
        overlay.publish_provider_record(publishers[index % len(publishers)], cid)
        cids.append(cid)
    indexer = IndexerService(overlay, coverage=0.97, rng=random.Random(89))
    resolver = CombinedResolver(overlay, indexer, random.Random(90))
    return cids, indexer, resolver


def test_ext_indexer_latency_advantage(benchmark, resolution_setup):
    cids, indexer, resolver = resolution_setup

    def run():
        return (
            resolver.batch(cids, ResolutionStrategy.INDEXER_ONLY),
            resolver.batch(cids, ResolutionStrategy.DHT_ONLY),
        )

    via_indexer, via_dht = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Extension — resolution latency (modelled seconds)",
        [
            ("indexer mean latency", mean_latency(via_indexer), float("nan")),
            ("DHT walk mean latency", mean_latency(via_dht), float("nan")),
            ("speedup factor", mean_latency(via_dht) / max(mean_latency(via_indexer), 1e-9), float("nan")),
            ("indexer availability", availability(via_indexer), float("nan")),
            ("DHT availability", availability(via_dht), float("nan")),
        ],
    )
    assert mean_latency(via_indexer) < mean_latency(via_dht) / 5
    assert availability(via_dht) > 0.85


def test_ext_censorship_needs_dht_fallback(benchmark, resolution_setup):
    cids, indexer, resolver = resolution_setup
    for cid in cids[: len(cids) // 2]:
        indexer.block(cid)
    try:
        def run():
            return (
                resolver.batch(cids, ResolutionStrategy.INDEXER_ONLY),
                resolver.batch(cids, ResolutionStrategy.INDEXER_WITH_DHT_FALLBACK),
            )

        censored, with_fallback = benchmark.pedantic(run, rounds=1, iterations=1)
        show(
            "Extension — censorship resistance",
            [
                ("availability, indexer only (50% blocked)", availability(censored), 0.5),
                ("availability, indexer + DHT fallback", availability(with_fallback), 1.0),
                ("extra latency paid on fallback", mean_latency(with_fallback) - mean_latency(censored), float("nan")),
            ],
        )
        assert availability(censored) <= 0.6
        assert availability(with_fallback) > 0.85
    finally:
        for cid in cids:
            indexer.unblock(cid)
