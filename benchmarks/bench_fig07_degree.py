"""F7 — Fig. 7: degree distribution of the DHT graph.

Out-degree sits in a narrow, bucket-dictated band; in-degree is skewed
with a heavy tail of highly connected nodes.  Absolute degrees scale
with network size (the paper's graph has ≈17× more nodes), so the
assertions target the *shape*: band width and tail ratios.
"""

from repro.core import topology
from repro.scenario import report as R

from _bench_utils import show


def test_fig07_degree_distribution(benchmark, campaign, paper):
    f7 = benchmark(R.fig7_report, campaign)
    show(
        "Fig. 7 — degree distribution (absolute values scale with n)",
        [
            ("out-degree mean", f7["out_mean"], 250.0),
            ("out-degree p10", f7["out_p10"], float("nan")),
            ("out-degree p90", f7["out_p90"], float("nan")),
            ("in-degree median", f7["in_median"], float("nan")),
            ("in-degree p90", f7["in_p90"], paper.in_degree_p90_max),
            ("in-degree max", f7["in_max"], float("nan")),
        ],
    )
    # Narrow out-degree band (bucket-bounded).
    assert f7["out_p90"] < 1.25 * f7["out_p10"]
    # Skewed in-degree: the tail dwarfs the typical node.
    assert f7["in_max"] > 2.5 * f7["in_median"]
    assert f7["in_p90"] > f7["in_median"]


def test_fig07_high_indegree_nodes_are_infrastructure(campaign, benchmark):
    """§4: the top in-degree nodes are Filebase's modified clients and
    AWS-hosted nodes."""
    snapshot = campaign.crawls.snapshots[-1]

    def top_nodes():
        in_degrees = topology.estimated_in_degrees(snapshot)
        ranked = sorted(in_degrees.items(), key=lambda kv: -kv[1])[:10]
        return [peer for peer, _ in ranked]

    top = benchmark(top_nodes)
    platform_or_aws = 0
    cloud_hosted = 0
    for peer in top:
        node = campaign.overlay.online_by_peer.get(peer)
        if node is None:
            continue
        if node.spec.platform is not None or node.spec.organisation == "amazon-aws":
            platform_or_aws += 1
        if node.spec.is_cloud_hosted:
            cloud_hosted += 1
    print(f"top-10 in-degree: {platform_or_aws} platform/AWS, {cloud_hosted} cloud-hosted")
    # The paper's top-10 (2 Filebase + 8 AWS) is all infrastructure; at
    # bench scale long-lived plain cloud nodes compete, so assert a
    # visible platform/AWS presence and a cloud-hosted majority.
    assert platform_or_aws >= 2
    assert cloud_hosted >= 7
