"""F18 — Fig. 18: gateway frontend vs overlay IPs by cloud provider,
plus the §3 gateway-identification counts."""

from repro.scenario import report as R

from _bench_utils import show


def test_fig18_gateway_cloud_providers(benchmark, campaign, paper):
    f18 = benchmark(R.fig18_19_report, campaign)
    frontends = f18["frontend_provider_shares"]
    overlay = f18["overlay_provider_shares"]
    show(
        "Fig. 18 — gateway IPs by cloud provider",
        [
            ("frontend: cloudflare", frontends.get("cloudflare", 0.0), float("nan")),
            ("frontend: non-cloud", frontends.get("non-cloud", 0.0), float("nan")),
            ("overlay: cloudflare", overlay.get("cloudflare", 0.0), float("nan")),
            ("overlay: non-cloud", overlay.get("non-cloud", 0.0), float("nan")),
        ],
    )
    # Cloudflare leads both sides (its overlay connections are reverse-
    # proxied through its own address space, §7).
    assert max(frontends, key=frontends.get) == "cloudflare"
    assert max(overlay, key=overlay.get) == "cloudflare"
    # A commendable non-cloud fringe exists on both sides.
    assert frontends.get("non-cloud", 0.0) > 0.0
    assert overlay.get("non-cloud", 0.0) > 0.0


def test_sec3_gateway_counts(benchmark, campaign, paper):
    f18 = benchmark(R.fig18_19_report, campaign)
    show(
        "§3 — gateway identification",
        [
            ("listed endpoints", float(f18["num_listed_endpoints"]), float(paper.gateway_endpoints_listed)),
            ("functional endpoints", float(f18["num_functional_endpoints"]), float(paper.gateway_endpoints_functional)),
            ("overlay IDs discovered", float(f18["num_overlay_ids"]), float(paper.gateway_overlay_ids)),
        ],
    )
    assert f18["num_listed_endpoints"] == paper.gateway_endpoints_listed
    assert f18["num_functional_endpoints"] == paper.gateway_endpoints_functional
    # Repeated probes enumerate most (not necessarily all) pool nodes.
    assert f18["num_overlay_ids"] >= 0.75 * paper.gateway_overlay_ids
