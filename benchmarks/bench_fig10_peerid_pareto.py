"""F10 — Fig. 10: DHT/Bitswap peer-ID simplified Pareto chart.

The paper: the top 5 % of peer IDs generate ≈97 % of the traffic
(our smaller identity universe yields a somewhat lower share; see
EXPERIMENTS.md), and gateways contribute ≈1 % of DHT but ≈18 % of
Bitswap traffic.
"""

from repro.scenario import report as R

from _bench_utils import show


def test_fig10_peerid_pareto(benchmark, campaign, paper):
    f10 = benchmark(R.fig10_report, campaign)
    show(
        "Fig. 10 — peer-ID concentration",
        [
            ("DHT top-5% share", f10["dht_top5pct_share"], paper.top5pct_peerid_traffic_share),
            ("Bitswap top-5% share", f10["bitswap_top5pct_share"], paper.top5pct_peerid_traffic_share),
            ("gateway share of DHT", f10["dht_gateway_share"], paper.gateway_dht_traffic_share),
            ("gateway share of Bitswap", f10["bitswap_gateway_share"], paper.gateway_bitswap_traffic_share),
        ],
    )
    # Far beyond the 20/80 Pareto principle.
    assert f10["dht_top5pct_share"] > 0.6
    # Gateways: heavy on Bitswap, light on the DHT.
    assert f10["bitswap_gateway_share"] > 5 * f10["dht_gateway_share"]
    assert abs(f10["bitswap_gateway_share"] - paper.gateway_bitswap_traffic_share) < 0.12
    assert f10["dht_gateway_share"] < 0.06


def test_fig10_curve_is_valid_cdf(benchmark, campaign):
    f10 = benchmark(R.fig10_report, campaign)
    for key in ("dht_curve", "bitswap_curve"):
        ys = [y for _, y in f10[key]]
        assert ys == sorted(ys)
        assert abs(ys[-1] - 1.0) < 1e-9
