"""S3 — §3 crawl-dataset statistics.

Absolute counts scale with the simulated network (bench scale vs the
paper's 25.8 k servers); the comparable quantities are the ratios:
crawlable fraction, addresses per peer, and the turnover factors
(which also grow with observation length — the paper observed 38 days).
"""

from repro.scenario import report as R

from _bench_utils import show


def test_sec3_crawl_stats(benchmark, campaign, paper):
    stats = benchmark(R.crawl_stats_report, campaign)
    show(
        "§3 crawl statistics",
        [
            ("crawls", stats["num_crawls"], float(paper.num_crawls)),
            ("discovered/crawl", stats["avg_discovered"], paper.avg_peers_per_crawl),
            ("crawlable fraction", stats["crawlable_fraction"],
             paper.avg_crawlable_per_crawl / paper.avg_peers_per_crawl),
            ("IPs per peer", stats["ips_per_peer"], paper.addrs_per_peer),
            ("peer turnover (38d paper)", stats["peer_turnover"],
             paper.unique_peer_ids / paper.avg_peers_per_crawl),
            ("IP turnover (38d paper)", stats["ip_turnover"],
             paper.unique_ips / paper.avg_peers_per_crawl),
        ],
    )
    assert 0.55 < stats["crawlable_fraction"] < 0.85
    assert 1.4 < stats["ips_per_peer"] < 2.2
    assert stats["peer_turnover"] > 1.0
    assert stats["ip_turnover"] > stats["peer_turnover"]
