#!/usr/bin/env python
"""Throughput and overhead harness for streaming analytics
(``repro.obs.stream``).

Three layers, mirroring ``bench_obs_overhead.py``:

* **sketch primitives** — raw update throughput of the Space-Saving,
  KLL-quantile and linear-counting sketches (the per-event budget).
* **hook dispatch** — the monitor hook (``observe_hydra`` /
  ``observe_bitswap``) replayed over a real campaign's logs, in both
  states: the null path (streaming off, one global read + no-op call)
  and the live path (all sketches updating).  The live number is the
  headline **events/s**.
* **end-to-end campaigns** — the same campaign with streaming off and
  on.  The ratio is the overhead budget: streaming-on must stay within
  ``--budget`` (default 1.10x) of streaming-off, enforced whenever
  ``--check`` runs (the CI ``stream-smoke`` job).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_stream.py               # run, write JSON
    PYTHONPATH=src python benchmarks/bench_obs_stream.py \
        --check BENCH_obs_stream.json                                  # CI regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import List, Optional

if __package__ in (None, ""):
    _repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for entry in (os.path.join(_repo_root, "src"), os.path.dirname(os.path.abspath(__file__))):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from _bench_utils import BenchReport, best_of, compare_to_baseline

from repro.obs import stream as obs_stream
from repro.obs.sketch import LinearCounter, QuantileSketch, SpaceSaving
from repro.obs.stream import StreamAnalytics, use_stream
from repro.scenario.config import ScenarioConfig
from repro.scenario.run import run_campaign
from repro.world.profiles import WorldProfile

#: Campaign shape for the log replay and the end-to-end overhead pair.
SERVERS = 150
SEED = 77


def bench_config(stream: bool) -> ScenarioConfig:
    return ScenarioConfig(
        profile=WorldProfile(online_servers=SERVERS, seed=SEED),
        days=1,
        warmup_days=0,
        daily_cid_sample=40,
        provider_fetch_days=1,
        gateway_probes_per_endpoint=2,
        seed=SEED,
        stream=stream,
    )


def bench_sketch_primitives(report: BenchReport, updates: int = 200_000) -> None:
    """Raw per-update cost of each sketch (synthetic zipf-ish keys)."""
    rng = random.Random(13)
    keys = [f"peer-{int(rng.paretovariate(1.1)) % 4096}" for _ in range(updates)]
    values = [rng.paretovariate(1.2) for _ in range(updates)]

    def space_saving():
        sketch = SpaceSaving(capacity=1024)
        for key in keys:
            sketch.update(key)

    def quantile():
        sketch = QuantileSketch(256)
        for value in values:
            sketch.update(value)

    def linear_counter():
        counter = LinearCounter(1 << 15)
        for key in keys:
            counter.update(key)

    report.record("space_saving_update", best_of(space_saving), updates)
    report.record("quantile_update", best_of(quantile), updates)
    report.record("linear_counter_update", best_of(linear_counter), updates)


def bench_hook_dispatch(report: BenchReport, result) -> float:
    """The monitor hooks replayed over a real campaign's logs.

    Returns live hydra events/s (the dashboard's headline rate)."""
    envelopes = list(result.hydra.log)
    broadcasts = [(e.timestamp, e.sender, e.cid) for e in result.bitswap_monitor.log]
    gateway_peers = result.gateway_peers

    def replay_hydra():
        for envelope in envelopes:
            obs_stream.observe_hydra(envelope)

    def replay_bitswap():
        for timestamp, node, cid in broadcasts:
            obs_stream.observe_bitswap(timestamp, node, cid)

    def live_analytics() -> StreamAnalytics:
        return StreamAnalytics(
            21_600.0,
            provider_of=result.world.cloud_db.lookup,
            is_gateway=gateway_peers.__contains__,
        )

    # Null path: streaming off (the default), every hook must stay a
    # global read plus a no-op call.
    null_seconds = best_of(replay_hydra)
    report.record("observe_hydra_null", null_seconds, len(envelopes))
    report.record("observe_bitswap_null", best_of(replay_bitswap), len(broadcasts))

    def streamed_hydra():
        with use_stream(live_analytics()):
            replay_hydra()

    def streamed_bitswap():
        with use_stream(live_analytics()):
            replay_bitswap()

    live_seconds = best_of(streamed_hydra)
    report.record("observe_hydra_streaming", live_seconds, len(envelopes))
    report.record("observe_bitswap_streaming", best_of(streamed_bitswap), len(broadcasts))
    report.record_speedup("observe_hydra_null_vs_streaming", live_seconds, null_seconds)

    events_per_second = len(envelopes) / live_seconds if live_seconds else 0.0
    print(f"{'live_hydra_events_per_s':<28} {events_per_second:14,.0f} ev/s")
    return events_per_second


def bench_campaign_overhead(report: BenchReport, repeat: int = 5) -> float:
    """End-to-end: the same campaign with streaming off and on.

    Single-run campaign times swing by ±8% on shared hosts, and taking
    each side's best independently pairs a lucky off-run with unlucky
    on-runs (or vice versa).  Instead the runs are interleaved in
    off/on pairs — so load drift hits both sides of a pair — and the
    budget ratio is the *median* of the per-pair ratios, which a single
    noisy pair cannot move.  Returns that ratio."""
    ratios = []
    off_seconds = float("inf")
    on_seconds = float("inf")
    for _ in range(repeat):
        off = best_of(lambda: run_campaign(bench_config(stream=False)), repeat=1)
        on = best_of(lambda: run_campaign(bench_config(stream=True)), repeat=1)
        ratios.append(on / off if off else float("inf"))
        off_seconds = min(off_seconds, off)
        on_seconds = min(on_seconds, on)
    report.record("campaign_streaming_off", off_seconds)
    report.record("campaign_streaming_on", on_seconds)
    ratios.sort()
    ratio = ratios[len(ratios) // 2]
    report.speedups["campaign_on_over_off_ratio"] = ratio
    print(
        f"{'campaign_on_over_off_ratio':<28} {ratio:6.3f}x median of "
        f"{', '.join(f'{r:.3f}' for r in ratios)} (budget gate)"
    )
    return ratio


def run(out_path: Optional[str]) -> dict:
    report = BenchReport()
    print(f"calibration: {report.calibration:.4f}s\n")

    bench_sketch_primitives(report)

    print(f"\nrunning fixture campaign ({SERVERS} servers, seed {SEED})...")
    fixture = run_campaign(bench_config(stream=False))
    print(
        f"fixture ready: {len(fixture.hydra.log)} hydra events, "
        f"{len(fixture.bitswap_monitor.log)} bitswap events\n"
    )

    bench_hook_dispatch(report, fixture)
    print()
    bench_campaign_overhead(report)

    if out_path:
        report.write(out_path)
    return report.payload()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_obs_stream.json",
        help="where to write the machine-readable report",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="compare against a committed baseline; exit 1 on gross regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed growth factor of normalized cost before failing --check",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=1.10,
        help="max allowed streaming-on/off campaign wall-clock ratio in --check mode",
    )
    options = parser.parse_args(argv)

    current = run(options.out)

    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        regressions = compare_to_baseline(current, baseline, options.tolerance)
        if regressions:
            print(f"\nPERF REGRESSION (> {options.tolerance:.1f}x normalized cost):")
            for name, before, after in regressions:
                print(f"  {name}: {before:.2f}x cal -> {after:.2f}x cal")
            return 1
        ratio = current["speedups"]["campaign_on_over_off_ratio"]
        if ratio > options.budget:
            print(
                f"\nOVERHEAD BUDGET EXCEEDED: streaming-on campaign is "
                f"{ratio:.3f}x the off campaign (budget {options.budget:.2f}x)"
            )
            return 1
        print(
            f"\nperf check OK (tolerance {options.tolerance:.1f}x, overhead "
            f"{ratio:.3f}x within {options.budget:.2f}x budget, "
            f"{len(baseline.get('benchmarks', {}))} baseline entries)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
