"""F4 — Fig. 4: cloud:non-cloud ratio vs number of aggregated crawls.

Under G-IP the ratio decays as rotating-IP churners accumulate; under
A-N it stays flat.  Measured on the paper-horizon campaign (101 crawls).
"""

from repro.scenario import report as R

from _bench_utils import show


def test_fig04_ratio_vs_cumulative_crawls(benchmark, horizon_campaign):
    f4 = benchmark(R.fig4_report, horizon_campaign)
    gip = [ratio for _, ratio in f4["G-IP"]]
    an = [ratio for _, ratio in f4["A-N"]]
    quarter = len(gip) // 4
    show(
        "Fig. 4 — ratio vs cumulative crawls",
        [
            ("G-IP @ 1 crawl", gip[0], float("nan")),
            ("G-IP @ 25%", gip[quarter], float("nan")),
            ("G-IP @ 101 crawls", gip[-1], 0.399 / 0.601),
            ("A-N @ 1 crawl", an[0], float("nan")),
            ("A-N @ 101 crawls", an[-1], 0.796 / 0.186),
            ("A-N drift |last/first - 1|", abs(an[-1] / an[0] - 1), 0.0),
        ],
    )
    # Shape assertions: monotone-ish G-IP decay, flat A-N.
    assert gip[-1] < gip[quarter] < gip[0]
    assert abs(an[-1] / an[0] - 1) < 0.35
    # Decay is substantial: the final ratio is a fraction of the initial.
    assert gip[-1] < 0.45 * gip[0]
