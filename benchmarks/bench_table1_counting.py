"""T1 — Table 1: the counting-methodology worked example (paper §3).

Reproduces the paper's toy dataset exactly: G-IP must yield DE=2, US=2
and A-N must yield DE=0.5, US=1.
"""

from repro.core.counting import CrawlRow, a_n_counts, g_ip_counts
from repro.ids.peerid import PeerID

from _bench_utils import show


def _table1_rows():
    p1 = PeerID((1).to_bytes(32, "big"))
    p2 = PeerID((2).to_bytes(32, "big"))
    return [
        CrawlRow(1, p1, "a1"),
        CrawlRow(1, p1, "a2"),
        CrawlRow(1, p2, "a3"),
        CrawlRow(2, p2, "a2"),
        CrawlRow(2, p2, "a3"),
        CrawlRow(2, p2, "a4"),
    ]


GEO = {"a1": "DE", "a2": "DE", "a3": "US", "a4": "US"}


def test_table1_counting_example(benchmark):
    rows = _table1_rows()

    def run():
        return g_ip_counts(rows, GEO.get), a_n_counts(rows, GEO.get)

    g_ip, a_n = benchmark(run)
    show(
        "Table 1 — counting example",
        [
            ("G-IP DE", g_ip["DE"], 2.0),
            ("G-IP US", g_ip["US"], 2.0),
            ("A-N  DE", a_n["DE"], 0.5),
            ("A-N  US", a_n["US"], 1.0),
        ],
    )
    assert g_ip == {"DE": 2.0, "US": 2.0}
    assert a_n == {"DE": 0.5, "US": 1.0}
